"""Nodal discontinuous-Galerkin operators on adaptive forest meshes.

Implements the dG machinery of §II-E: all unknowns live per element on
tensor LGL nodes; fluxes across faces need the neighbor's trace, found by
binary search in the local octant storage or the ghost layer; traces are
aligned across inter-tree faces (arbitrary rotations) and interpolated on
2:1 non-conforming faces ("the unknowns on the larger face are
interpolated to align with the unknowns on the four connecting smaller
faces").

One generic *trace-transfer matrix* covers every case: evaluate the
partner's tensor Lagrange basis at my evaluation points expressed in the
partner's face coordinates (integer-exact mapping through the tree
transforms).  For conforming faces the matrix degenerates to a
permutation; for hanging faces it is the parent-to-child interpolation;
orientation flips and axis swaps fall out of the coordinate mapping.
Face pairs sharing a geometric *signature* (faces, level offset, relative
anchor, transform) share one matrix, so flux evaluation batches into a
handful of einsums per signature.

Non-conforming flux evaluation happens at the fine side's nodes
(mortar = fine face).  The fine element lifts directly; the coarse
element lifts through the transposed interpolation against the fine
side's surface metric, which keeps the scheme conservative.  Every rank
computes only its own elements' residuals from local + ghost data — no
flux values ever travel over the network.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.mangll.mesh import Mesh, face_node_indices
from repro.mangll.quadrature import gauss_lobatto, lagrange_interpolation_matrix
from repro.p4est.connectivity import (
    CellTransform,
    Connectivity,
    face_axis_side,
    face_tangential_axes,
)
from repro.p4est.forest import Forest
from repro.p4est.ghost import GhostLayer
from repro.p4est.octant import (
    Octant,
    Octants,
    is_ancestor_pairwise,
    searchsorted_octants,
)

# Mortar kinds.
CONFORMING = 0
FINE = 1  # my face hangs; partner is coarser; evaluate at my nodes
COARSE = 2  # partner is finer; evaluate at the fine child's nodes
BOUNDARY = 3


@dataclass
class MortarBatch:
    """A batch of face pairs sharing one trace-transfer signature.

    ``eminus`` are local element indices whose residual this batch lifts
    into; ``eplus`` are combined (local+ghost) partner indices.  Flux is
    evaluated at the *eval side*'s face nodes: the minus side for
    CONFORMING/FINE/BOUNDARY, the plus (fine) side for COARSE.
    """

    kind: int
    fminus: int
    fplus: int
    eminus: np.ndarray
    eplus: np.ndarray
    transfer: Optional[np.ndarray]  # maps the *other* side's trace to eval pts


class DGSpace:
    """Discontinuous Galerkin operator space over a forest mesh."""

    def __init__(
        self, forest: Forest, ghost: GhostLayer, mesh: Mesh, degree: int
    ) -> None:
        if degree != mesh.degree:
            raise ValueError("mesh degree mismatch")
        self.forest = forest
        self.ghost = ghost
        self.mesh = mesh
        self.degree = degree
        self.dim = forest.dim
        self.nq = degree + 1
        self.nfp = self.nq ** (self.dim - 1)
        self.batches: List[MortarBatch] = []
        self._build()

    # --- Construction ---------------------------------------------------------

    def _build(self) -> None:
        forest = self.forest
        dim = self.dim
        conn = forest.conn
        combined = self.mesh.octants  # local then ghost
        order = combined.sort_order()
        sorted_combined = combined[order]
        nlocal = self.mesh.nelem_local

        elems = forest.local
        h = elems.lens()
        groups: Dict[Tuple, Dict[str, List]] = {}

        for f in range(forest.D.num_faces):
            axis, side = face_axis_side(f)
            off = [0, 0, 0]
            off[axis] = 1 if side else -1
            nb = elems.shifted(
                off[0] * h, off[1] * h, off[2] * h
            )
            inside = nb.inside_root()
            # Route exterior regions through face links (faces only — a
            # face neighbor region is exterior in exactly one axis).
            regions = nb.copy()
            tform: List[Optional[CellTransform]] = [None] * len(elems)
            valid = inside.copy()
            ext_idx = np.flatnonzero(~inside)
            if len(ext_idx):
                for tree in np.unique(elems.tree[ext_idx]):
                    sel = ext_idx[elems.tree[ext_idx] == tree]
                    link = conn.face_links.get((int(tree), f))
                    if link is None:
                        continue
                    img = link.transform.apply_octants(nb[sel], link.nb_tree)
                    regions.tree[sel] = img.tree
                    regions.x[sel] = img.x
                    regions.y[sel] = img.y
                    regions.z[sel] = img.z
                    for i in sel:
                        tform[int(i)] = link.transform
                    valid[sel] = True

            vidx = np.flatnonzero(valid)
            if len(vidx) == 0:
                self._add_boundary(groups, np.arange(len(elems)), f)
                continue
            self._add_boundary(groups, np.flatnonzero(~valid), f)

            regs = regions[vidx]
            # Same-size or coarser partner: the leaf at/before the region.
            pos = searchsorted_octants(sorted_combined, regs, side="right")
            cand = np.maximum(pos - 1, 0)
            anc = sorted_combined[cand]
            has = (pos > 0) & is_ancestor_pairwise(anc, regs)
            same = has & (anc.level == regs.level)
            coarser = has & (anc.level < regs.level)
            # Finer partners: leaves strictly inside the region.
            lo = searchsorted_octants(sorted_combined, regs, side="right")
            hi = searchsorted_octants(
                sorted_combined, regs.last_descendants(), side="right"
            )
            finer = (hi > lo) & ~same

            for j in np.flatnonzero(same):
                e = int(vidx[j])
                p = int(order[cand[j]])
                self._add_pair(groups, CONFORMING, e, f, p, tform[e], regs[j])
            for j in np.flatnonzero(coarser):
                e = int(vidx[j])
                p = int(order[cand[j]])
                self._add_pair(groups, FINE, e, f, p, tform[e], regs[j])
            for j in np.flatnonzero(finer):
                e = int(vidx[j])
                for k in range(int(lo[j]), int(hi[j])):
                    child = sorted_combined[k]
                    # Only direct face children touch my face: their face
                    # toward me must lie on the region's near plane.
                    if not self._touches_face_plane(regs[j], child, f, tform[e]):
                        continue
                    p = int(order[k])
                    self._add_pair(groups, COARSE, e, f, p, tform[e], regs[j])

        self._finalize_groups(groups)

    def _touches_face_plane(
        self,
        region: Octants,
        child: Octants,
        f: int,
        transform: Optional[CellTransform],
    ) -> bool:
        """Does the fine leaf ``child`` (inside the neighbor region) touch
        the plane shared with my face ``f``?"""
        # The shared plane, in the region's (= partner tree's) coordinates:
        # my face f's plane maps to one side of the region along some axis.
        axis, side = face_axis_side(f)
        # In region coordinates, the plane adjoining me is the region
        # boundary facing back toward my element.
        if transform is None:
            raxis, rside = axis, 1 - side
        else:
            # My axis `axis` maps to the partner axis j with perm[j]=axis.
            j = transform.perm.index(axis)
            raxis = j
            flip = transform.sign[j] < 0
            rside = (1 - side) if not flip else side
        rc = [region.x[0], region.y[0], region.z[0]][raxis]
        rh = int(region.lens()[0])
        cc = [child.x[0], child.y[0], child.z[0]][raxis]
        ch = int(child.lens()[0])
        plane = rc if rside == 0 else rc + rh
        return (cc == plane) if rside == 0 else (cc + ch == plane)

    def _add_boundary(self, groups, eidx: np.ndarray, f: int) -> None:
        if len(eidx) == 0:
            return
        key = ("b", f)
        g = groups.setdefault(key, {"eminus": [], "eplus": []})
        g["eminus"].extend(int(i) for i in eidx)
        g["eplus"].extend([-1] * len(eidx))

    def _add_pair(
        self,
        groups,
        kind: int,
        e: int,
        f: int,
        p: int,
        transform: Optional[CellTransform],
        region: Octants,
    ) -> None:
        combined = self.mesh.octants
        me = self.forest.local.octant(e)
        po = combined.octant(p)
        fplus = self._partner_face(f, transform)
        # Signature: relative geometry in partner coordinates, in units of
        # the smaller cell, plus the transform identity.
        tkey = (
            (transform.perm, transform.sign, transform.offset)
            if transform is not None
            else None
        )
        my_img = self._map_octant(me, transform)
        hs = min(my_img.len(self.dim), po.len(self.dim))
        rel = (
            (my_img.x - po.x) // hs,
            (my_img.y - po.y) // hs,
            (my_img.z - po.z) // hs,
            my_img.level - po.level,
        )
        key = (kind, f, fplus, tkey, rel)
        g = groups.setdefault(
            key, {"eminus": [], "eplus": [], "me": me, "po": po, "transform": transform}
        )
        g["eminus"].append(e)
        g["eplus"].append(p)

    def _map_octant(self, o: Octant, transform: Optional[CellTransform]) -> Octant:
        if transform is None:
            return o
        octs = Octants.from_octants(self.dim, [o])
        img = transform.apply_octants(octs, 0)
        return img.octant(0)

    def _partner_face(self, f: int, transform: Optional[CellTransform]) -> int:
        axis, side = face_axis_side(f)
        if transform is None:
            return 2 * axis + (1 - side)
        j = transform.perm.index(axis)
        flip = transform.sign[j] < 0
        pside = (1 - side) if not flip else side
        return 2 * j + pside

    def _finalize_groups(self, groups: Dict) -> None:
        for key, g in groups.items():
            if key[0] == "b":
                self.batches.append(
                    MortarBatch(
                        BOUNDARY,
                        key[1],
                        -1,
                        np.array(g["eminus"], dtype=np.int64),
                        np.array(g["eplus"], dtype=np.int64),
                        None,
                    )
                )
                continue
            kind, f, fplus, tkey, rel = key
            transfer = self._transfer_matrix(
                kind, f, fplus, g["me"], g["po"], g["transform"]
            )
            self.batches.append(
                MortarBatch(
                    kind,
                    f,
                    fplus,
                    np.array(g["eminus"], dtype=np.int64),
                    np.array(g["eplus"], dtype=np.int64),
                    transfer,
                )
            )

    def _transfer_matrix(
        self,
        kind: int,
        f: int,
        fplus: int,
        me: Octant,
        po: Octant,
        transform: Optional[CellTransform],
    ) -> np.ndarray:
        """Map the *source* side's face-nodal trace to values at the eval
        points.

        CONFORMING/FINE: eval at my face nodes; source = partner trace.
        COARSE: eval at the partner (fine child) face nodes; source = my
        trace.  Entries are tensor Lagrange evaluations; exact 0/1 for
        aligned nodes.
        """
        dim, N = self.dim, self.degree
        L = self.forest.D.root_len
        xi, _ = gauss_lobatto(N + 1)

        def face_node_coords(o: Octant, face: int) -> np.ndarray:
            """Physical-lattice (float) coords of face nodes, (nfp, dim)."""
            axis, side = face_axis_side(face)
            tang = face_tangential_axes(dim, face)
            base = np.array([o.x, o.y, o.z], dtype=np.float64)[:dim]
            hlen = o.len(dim)
            pts = np.empty((self.nfp, dim))
            t01 = 0.5 * (xi + 1.0)
            if dim == 2:
                (t1,) = tang
                for i in range(self.nq):
                    c = base.copy()
                    c[axis] += hlen * side
                    c[t1] += hlen * t01[i]
                    pts[i] = c
            else:
                t1, t2 = tang
                k = 0
                for j in range(self.nq):
                    for i in range(self.nq):
                        c = base.copy()
                        c[axis] += hlen * side
                        c[t1] += hlen * t01[i]
                        c[t2] += hlen * t01[j]
                        pts[k] = c
                        k += 1
            return pts

        if kind in (CONFORMING, FINE):
            eval_o, eval_f = me, f
            src_o, src_f = po, fplus
            eval_pts = face_node_coords(eval_o, eval_f)
            if transform is not None:
                cols = [eval_pts[:, a] for a in range(dim)]
                img = transform.apply_points(
                    [np.asarray(c) for c in cols], scale=1
                )
                eval_pts = np.column_stack(img[:dim])
        else:  # COARSE: eval at partner's nodes, source = my trace
            eval_o, eval_f = po, fplus
            src_o, src_f = me, f
            eval_pts = face_node_coords(eval_o, eval_f)
            if transform is not None:
                inv = transform.inverse()
                # eval points are in partner coordinates; map back to mine.
                cols = [eval_pts[:, a] for a in range(dim)]
                img = inv.apply_points([np.asarray(c) for c in cols], scale=1)
                eval_pts = np.column_stack(img[:dim])
                src_o, src_f = me, f
            # Note: when mapping back, source face coords are in my tree.

        # Express eval points in the source element's face parameter.
        axis_s, side_s = face_axis_side(src_f)
        tang_s = face_tangential_axes(dim, src_f)
        base = np.array([src_o.x, src_o.y, src_o.z], dtype=np.float64)[:dim]
        hlen = src_o.len(dim)
        params = []
        for a in tang_s:
            u = (eval_pts[:, a] - base[a]) / hlen  # in [0,1]
            params.append(2.0 * u - 1.0)
        # Tensor Lagrange basis of the source face evaluated at the points.
        mats = [lagrange_interpolation_matrix(xi, p) for p in params]
        nfp = self.nfp
        out = np.empty((nfp, nfp))
        if dim == 2:
            out = mats[0]
        else:
            # Source face nodes: (i, j) over (tang_s[0], tang_s[1]), i fast.
            M1, M2 = mats  # each (nfp_pts, nq) with per-point rows
            for q in range(nfp):
                outer = np.outer(M2[q], M1[q])  # (j, i)
                out[q] = outer.ravel()
        return out

    # --- Residual evaluation -----------------------------------------------------

    def exchange_ghost_fields(self, comm, q: np.ndarray) -> np.ndarray:
        """Combined (local+ghost) field array from the local one."""
        if self.mesh.nelem_ghost == 0:
            return q
        gq = self.ghost.exchange_octant_data(comm, q)
        return np.concatenate([q, gq], axis=0)

    def face_trace(self, q_all: np.ndarray, elems: np.ndarray, face: int) -> np.ndarray:
        """Extract the nodal trace of ``q_all`` on ``face`` of ``elems``."""
        idx = face_node_indices(self.dim, self.nq, face)
        return q_all[elems][:, idx]

    def lift_scale(self) -> np.ndarray:
        """Inverse diagonal mass: 1 / (w_i detJ_i) per local element node."""
        m = self.mesh
        return 1.0 / (m.weights[None, :] * m.detj[: m.nelem_local])

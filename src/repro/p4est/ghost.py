"""Ghost layer construction and ghost data exchange.

``Ghost`` (paper §II-C/§II-E) collects one layer of non-local octants
touching the parallel partition boundary from the outside, sorted in the
SFC total order.  We also keep the *mirror* bookkeeping — which of my
octants were sent to which ranks — so that per-octant field data can later
be pushed to the neighbors' ghost slots with one sparse exchange
(:meth:`GhostLayer.exchange_octant_data`), the facility the dG and cG
discretizations of mangll are built on.

Construction mirrors Balance's neighborhood machinery: every local leaf is
sent to each rank owning leaves that overlap one of its same-size neighbor
regions (transformed across inter-tree links where needed).  Adjacency is
symmetric, so this sender-side rule delivers exactly one layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.p4est.balance import generate_neighbor_regions
from repro.p4est.forest import Forest, octants_from_wire, octants_to_wire
from repro.parallel.collectives import collective
from repro.p4est.octant import Octants, neighbor_offsets
from repro.trace.tracer import PHASE_GHOST, traced


@dataclass
class GhostLayer:
    """One layer of remote octants around this rank's partition segment.

    Attributes
    ----------
    octants:
        The ghost octants, in global SFC order (coordinates in their own
        tree's system).
    owners:
        Owning rank of each ghost octant.
    mirrors:
        Sorted local indices of my octants that appear in some other
        rank's ghost layer.
    mirror_map:
        For each neighbor rank, the sorted local indices sent to it.
    ghost_map:
        For each neighbor rank, the indices into ``octants`` that came
        from it (ascending, matching that rank's local SFC order).
    """

    octants: Octants
    owners: np.ndarray
    mirrors: np.ndarray
    mirror_map: Dict[int, np.ndarray] = field(default_factory=dict)
    ghost_map: Dict[int, np.ndarray] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.octants)

    @collective("method", "exchange_octant_data")
    def exchange_octant_data(self, comm, local_data: np.ndarray) -> np.ndarray:
        """Push per-octant data to neighbors; returns per-ghost data.

        ``local_data`` is indexed like the local octant array (first axis);
        the result is indexed like :attr:`octants`.  This is mangll's
        parallel scatter for element fields.
        """
        local_data = np.asarray(local_data)
        outbox = {
            rank: np.ascontiguousarray(local_data[idx])
            for rank, idx in self.mirror_map.items()
        }
        inbox = comm.exchange(outbox)
        shape = (len(self.octants),) + local_data.shape[1:]
        out = np.zeros(shape, dtype=local_data.dtype)
        for rank, payload in inbox.items():
            out[self.ghost_map[rank]] = payload
        return out


@traced(PHASE_GHOST)
@collective("function", "build_ghost")
def build_ghost(
    forest: Forest, codim: Optional[int] = None, layers: int = 1
) -> GhostLayer:
    """Collect the ghost layer (``Ghost``).

    ``codim`` chooses the adjacency that defines "touching": 1 for
    face-ghosts only, up to ``dim`` for full corner ghosts (default).
    ``layers`` widens the halo: the k-th layer contains remote leaves
    adjacent to the (k-1)-th (the paper: "multiple layers, for example as
    needed by a semi-Lagrangian method, can be enabled by a minor
    extension of Ghost").  Requires no particular balance state, though
    the discretizations assume a 2:1-balanced forest.
    """
    dim = forest.dim
    codim = dim if codim is None else codim
    if not 1 <= codim <= dim:
        raise ValueError(f"codim must be in [1, {dim}]")
    if layers < 1:
        raise ValueError("layers must be >= 1")
    if layers > 1:
        return _build_ghost_multilayer(forest, codim, layers)
    comm = forest.comm
    leaves = forest.local
    n = len(leaves)

    # For each leaf, which remote ranks own a region adjacent to it?
    send_to: Dict[int, set] = {}
    h = leaves.lens()
    regions_per_leaf: List[Tuple[np.ndarray, Octants]] = []
    for c in range(1, codim + 1):
        for off in neighbor_offsets(dim, c):
            nb = leaves.shifted(off[0] * h, off[1] * h, off[2] * h)
            inside = nb.inside_root()
            idx_in = np.flatnonzero(inside)
            if len(idx_in):
                regions_per_leaf.append((idx_in, nb[idx_in]))
            idx_out = np.flatnonzero(~inside)
            if len(idx_out):
                ext = nb[idx_out]
                # _route_exterior returns transformed groups; we must track
                # which source leaf each transformed region came from, so
                # route per exterior group while preserving indices.
                routed = _route_exterior_indexed(forest, ext, idx_out)
                regions_per_leaf.extend(routed)

    mine = comm.rank
    for src_idx, regions in regions_per_leaf:
        if not len(regions):
            continue
        lo, hi = forest.owner_range(regions)
        span = int((hi - lo).max())
        for k in range(span + 1):
            p_arr = lo + k
            valid = p_arr <= hi
            if not valid.any():
                break
            for p in np.unique(p_arr[valid]):
                if p == mine:
                    continue
                sel = src_idx[valid & (p_arr == p)]
                send_to.setdefault(int(p), set()).update(sel.tolist())

    mirror_map = {
        p: np.array(sorted(idxs), dtype=np.int64) for p, idxs in send_to.items()
    }
    outbox = {p: octants_to_wire(leaves[idx]) for p, idx in mirror_map.items()}
    inbox = comm.exchange(outbox)

    parts: List[Octants] = []
    part_owner: List[np.ndarray] = []
    for src in sorted(inbox):
        got = octants_from_wire(dim, inbox[src])
        parts.append(got)
        part_owner.append(np.full(len(got), src, dtype=np.int64))
    if parts:
        ghosts = Octants.concat(parts)
        owners = np.concatenate(part_owner)
        order = ghosts.sort_order()
        ghosts = ghosts[order]
        owners = owners[order]
    else:
        ghosts = Octants.empty(dim)
        owners = np.empty(0, dtype=np.int64)

    ghost_map = {
        int(src): np.flatnonzero(owners == src) for src in np.unique(owners)
    }
    mirrors = (
        np.unique(np.concatenate([idx for idx in mirror_map.values()]))
        if mirror_map
        else np.empty(0, dtype=np.int64)
    )
    return GhostLayer(ghosts, owners, mirrors, mirror_map, ghost_map)


def _build_ghost_multilayer(forest: Forest, codim: int, layers: int) -> GhostLayer:
    """Widen a one-layer ghost halo by request/reply rounds.

    Each extra layer: compute the neighbor regions of the current halo
    locally (transforms are global knowledge), route them to their owner
    ranks, and have the owners reply with their leaves overlapping each
    region.  Mirror/ghost maps are extended so data exchange covers the
    whole halo.
    """
    from repro.p4est.balance import generate_neighbor_regions
    from repro.p4est.octant import is_ancestor_pairwise, searchsorted_octants

    comm = forest.comm
    dim = forest.dim
    ghost = build_ghost(forest, codim=codim, layers=1)
    mirror_sets: Dict[int, set] = {
        p: set(idx.tolist()) for p, idx in ghost.mirror_map.items()
    }
    g_octs = ghost.octants
    g_owner = ghost.owners

    def known_keys(octs: Octants) -> set:
        return set(zip(octs.tree.tolist(), octs.keys().tolist()))

    known = known_keys(forest.local) | known_keys(g_octs)

    frontier = g_octs
    for _ in range(layers - 1):
        all_done = comm.allreduce(int(len(frontier) == 0)) == comm.size
        if all_done:
            break
        regions = generate_neighbor_regions(forest.conn, frontier, codim)
        if len(regions):
            regions = regions.sorted().dedup()
        # Route regions to owners (excluding self: my own leaves are not
        # ghosts).
        dest_parts: Dict[int, List[np.ndarray]] = {}
        if len(regions):
            lo, hi = forest.owner_range(regions)
            span = int((hi - lo).max())
            for k in range(span + 1):
                p_arr = lo + k
                valid = p_arr <= hi
                if not valid.any():
                    break
                for p in np.unique(p_arr[valid]):
                    if p == comm.rank:
                        continue
                    sel = np.flatnonzero(valid & (p_arr == p))
                    dest_parts.setdefault(int(p), []).append(sel)
        wire_out = {
            p: octants_to_wire(regions[np.unique(np.concatenate(parts))])
            for p, parts in dest_parts.items()
        }
        inbox = comm.exchange(wire_out)

        # Owners reply with local leaves overlapping the queried regions.
        reply: Dict[int, np.ndarray] = {}
        for src, wire in inbox.items():
            regs = octants_from_wire(dim, wire)
            mine = forest.local
            hit = np.zeros(len(mine), dtype=bool)
            if len(mine) and len(regs):
                lo_i = searchsorted_octants(mine, regs, side="right")
                hi_i = searchsorted_octants(
                    mine, regs.last_descendants(), side="right"
                )
                for a, b in zip(lo_i, hi_i):
                    hit[a:b] = True
                pos = np.maximum(lo_i - 1, 0)
                anc = mine[pos]
                contain = (lo_i > 0) & is_ancestor_pairwise(anc, regs)
                hit[pos[contain]] = True
            idx = np.flatnonzero(hit)
            mirror_sets.setdefault(int(src), set()).update(idx.tolist())
            reply[int(src)] = octants_to_wire(mine[idx])
        answers = comm.exchange(reply)

        new_parts: List[Octants] = []
        new_owner_parts: List[np.ndarray] = []
        for src in sorted(answers):
            got = octants_from_wire(dim, answers[src])
            fresh = np.array(
                [
                    (t, k) not in known
                    for t, k in zip(got.tree.tolist(), got.keys().tolist())
                ],
                dtype=bool,
            )
            if fresh.any():
                kept = got[fresh]
                new_parts.append(kept)
                new_owner_parts.append(np.full(len(kept), src, dtype=np.int64))
                known |= known_keys(kept)
        if new_parts:
            frontier = Octants.concat(new_parts).sorted()
            add_owners = np.concatenate(new_owner_parts)
            merged = Octants.concat([g_octs, Octants.concat(new_parts)])
            g_owner = np.concatenate([g_owner, add_owners])
            order = merged.sort_order()
            g_octs = merged[order]
            g_owner = g_owner[order]
        else:
            frontier = Octants.empty(dim)

    mirror_map = {
        p: np.array(sorted(s), dtype=np.int64) for p, s in mirror_sets.items() if s
    }
    ghost_map = {
        int(src): np.flatnonzero(g_owner == src) for src in np.unique(g_owner)
    }
    mirrors = (
        np.unique(np.concatenate(list(mirror_map.values())))
        if mirror_map
        else np.empty(0, dtype=np.int64)
    )
    return GhostLayer(g_octs, g_owner, mirrors, mirror_map, ghost_map)


def _route_exterior_indexed(
    forest: Forest, ext: Octants, src_idx: np.ndarray
) -> List[Tuple[np.ndarray, Octants]]:
    """Like balance's exterior routing, but keeps source-leaf indices."""
    conn = forest.conn
    dim = conn.dim
    L = conn.D.root_len
    from repro.p4est.balance import corner_index, edge_index

    coords = [ext.x, ext.y, ext.z]
    patt = np.zeros(len(ext), dtype=np.int64)
    for a in range(dim):
        lowa = coords[a] < 0
        higha = coords[a] >= L
        patt += (lowa * 1 + higha * 2) * (3**a)
    combined = ext.tree.astype(np.int64) * (3**dim) + patt
    results: List[Tuple[np.ndarray, Octants]] = []
    for code in np.unique(combined):
        sel = np.flatnonzero(combined == code)
        group = ext[sel]
        gidx = src_idx[sel]
        tree = int(code // (3**dim))
        p = int(code % (3**dim))
        digits = [(p // (3**a)) % 3 for a in range(dim)]
        out_axes = [a for a in range(dim) if digits[a] != 0]
        sides = {a: digits[a] - 1 for a in out_axes}
        if len(out_axes) == 1:
            a = out_axes[0]
            face = 2 * a + sides[a]
            link = conn.face_links.get((tree, face))
            if link is not None:
                results.append((gidx, link.transform.apply_octants(group, link.nb_tree)))
        elif len(out_axes) == 2 and dim == 3:
            axis = next(a for a in range(3) if a not in out_axes)
            e = edge_index(axis, sides)
            for elink in conn.edge_links.get((tree, e), ()):
                results.append((gidx, elink.seed_octants(group, L)))
        else:
            cidx = corner_index(dim, sides)
            for clink in conn.corner_links.get((tree, cidx), ()):
                results.append((gidx, clink.seed_octants(group, L)))
    return results

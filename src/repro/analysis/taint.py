"""The rank-taint dataflow pass behind ``spmdlint``.

The pass walks one function (or a module's top level) tracking, per
variable, two taint marks:

* ``rank`` — the value differs across ranks deterministically
  (``comm.rank``, ``forest.local``, ``gather``/``scatter``/``exchange``
  results, parameters named ``rank``).
* ``nondet`` — the value differs run to run (set iteration order,
  ``os.getpid``, ``time.time``, unseeded RNG draws).

Collective call sites (classified through the shared registry —
``Comm`` methods on comm-like receivers, collective ``Forest`` methods
on forest-like receivers, registry-listed module functions resolved
through the import table, and local helpers whose summary says they
communicate) are then checked against the control context:

* under a tainted branch -> SPMD001,
* under a loop with tainted trip count -> SPMD002,
* inside an exception-swallowing ``try`` (or an ``except`` handler)
  -> SPMD003,
* fed a ``nondet`` payload -> SPMD004,

plus the syntactic rules SPMD005 (deprecated entry points), SPMD006
(hand-built layer stacks) and SPMD007 (unseeded RNG in SPMD
functions).  A rank-dependent ``return``/``break``/``continue``
followed by a later collective also raises SPMD001 — the "early exit"
form of collective divergence.  Rank-dependent ``raise`` is *not*
flagged: an uncaught exception aborts the whole machine attributably
(sanitizer/watchdog territory) rather than silently diverging the
sequence — unless a swallowing handler is in scope, which is exactly
SPMD003.

Crucially, uniform-result collectives *launder* taint: the result of
``allreduce``/``bcast``/``allgather`` is identical on every rank, so
``if comm.allreduce(flag, LOR): forest.refine(...)`` is clean.  This
is what separates the paper-correct idiom from the PR-4 bug
(``if local_mask.any(): forest.coarsen(...)``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.callgraph import FunctionInfo, ModuleIndex, dotted_path
from repro.analysis.registry import LintRegistry
from repro.analysis.report import Finding

__all__ = ["RANK", "NONDET", "EMPTY", "FunctionTaint", "Emit"]

RANK = "rank"
NONDET = "nondet"
Taint = FrozenSet[str]
EMPTY: Taint = frozenset()
_RANK: Taint = frozenset({RANK})
_NONDET: Taint = frozenset({NONDET})
_BOTH: Taint = frozenset({RANK, NONDET})

Emit = Callable[[Finding], None]


@dataclass
class _Frame:
    """One control-dependence context entered during the walk."""

    kind: str  # "branch" | "loop" | "try-swallow" | "except"
    taint: Taint = EMPTY
    line: int = 0
    detail: str = ""


@dataclass
class _CollectiveSite:
    """One collective call encountered in the function."""

    line: int
    name: str


def _describe(taint: Taint) -> str:
    """Human words for a taint set."""
    parts = []
    if RANK in taint:
        parts.append("rank-dependent")
    if NONDET in taint:
        parts.append("nondeterministic")
    return " and ".join(parts) or "clean"


class FunctionTaint:
    """Taint analysis of one function body (or a module's top level)."""

    def __init__(
        self,
        body: List[ast.stmt],
        *,
        index: ModuleIndex,
        registry: LintRegistry,
        path: str,
        function: str,
        emit: Emit,
        info: Optional[FunctionInfo] = None,
        summary_mode: bool = False,
    ) -> None:
        """Prepare the walk over ``body``.

        ``summary_mode`` computes the function's summary (no findings
        emitted); the engine's second pass emits findings for real.
        """
        self.body = body
        self.index = index
        self.registry = registry
        self.path = path
        self.function = function
        self.emit = emit if not summary_mode else (lambda f: None)
        self.info = info
        self.summary_mode = summary_mode

        self.taints: Dict[str, Taint] = {}
        self.kinds: Dict[str, Set[str]] = {}
        self.ctrl: List[_Frame] = []
        self.collectives: List[_CollectiveSite] = []
        self.return_taint: Taint = EMPTY
        self.tainted_exits: List[Tuple[int, str, Taint]] = []
        self.rng_sites: List[Tuple[ast.AST, str]] = []
        self.has_spmd_params = False
        self._seed_params()

    # Setup ----------------------------------------------------------------

    def _seed_params(self) -> None:
        """Seed parameter taints and kinds from names and annotations."""
        reg = self.registry
        if self.info is None:
            return
        node = self.info.node
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        args = node.args
        for a in args.posonlyargs + args.args + args.kwonlyargs + list(
            filter(None, [args.vararg, args.kwarg])
        ):
            name = a.arg
            ann = ""
            if a.annotation is not None:
                ann = ast.unparse(a.annotation).strip("\"'")
            kinds: Set[str] = set()
            if ann.split(".")[-1] in reg.comm_annotations or self._name_matches(
                name, reg.comm_name_suffixes
            ):
                kinds.add("comm")
            if ann.split(".")[-1] in reg.forest_annotations or self._name_matches(
                name, reg.forest_name_suffixes
            ):
                kinds.add("forest")
            if kinds:
                self.kinds[name] = kinds
                self.has_spmd_params = True
            if name in reg.rank_param_names:
                self.taints[name] = _RANK
        cls = self.info.class_name
        if cls is not None:
            if cls in reg.forest_annotations:
                self.kinds["self"] = {"forest"}
            elif cls.endswith("Comm") or cls in reg.comm_annotations:
                self.kinds["self"] = {"comm"}

    @staticmethod
    def _name_matches(name: str, suffixes: Tuple[str, ...]) -> bool:
        """Whether ``name`` denotes one of the suffix families."""
        low = name.lower()
        return any(low == s or low.endswith(s) for s in suffixes)

    # Entry point ----------------------------------------------------------

    def run(self) -> None:
        """Walk the body (loops twice for loop-carried taint), then the
        early-exit post-pass."""
        self._exec_block(self.body)
        for line, kind, taint in self.tainted_exits:
            for site in self.collectives:
                if site.line > line:
                    self._finding(
                        "SPMD001",
                        site.line,
                        0,
                        f"collective {site.name} may be skipped by a "
                        f"{_describe(taint)} {kind} earlier in the function",
                    )
                    break
        if self.rng_sites and self.is_spmd_function:
            for node, what in self.rng_sites:
                self._finding(
                    "SPMD007",
                    node.lineno,
                    node.col_offset,
                    f"unseeded RNG draw {what} in an SPMD function; "
                    "use a uniformly seeded Generator",
                )

    @property
    def is_spmd_function(self) -> bool:
        """Whether this function visibly participates in SPMD execution."""
        return self.has_spmd_params or bool(self.collectives)

    # Finding helpers ------------------------------------------------------

    def _finding(self, rule: str, line: int, col: int, message: str) -> None:
        """Emit one finding at (line, col)."""
        self.emit(
            Finding(rule, self.path, line, col, self.function, message)
        )

    def _note_collective(self, node: ast.AST, name: str) -> None:
        """Record a collective call site and check its control context."""
        self.collectives.append(_CollectiveSite(node.lineno, name))
        for frame in reversed(self.ctrl):
            if frame.kind in ("branch", "loop") and frame.taint:
                rule = "SPMD002" if frame.kind == "loop" else "SPMD001"
                where = (
                    "inside a loop with a"
                    if frame.kind == "loop"
                    else "under a"
                )
                self._finding(
                    rule,
                    node.lineno,
                    node.col_offset,
                    f"collective {name} {where} {_describe(frame.taint)} "
                    f"{frame.detail or frame.kind}",
                )
                break
        for frame in reversed(self.ctrl):
            if frame.kind in ("try-swallow", "except"):
                ctx = (
                    "inside a try whose handler swallows exceptions"
                    if frame.kind == "try-swallow"
                    else "inside an except handler"
                )
                self._finding(
                    "SPMD003",
                    node.lineno,
                    node.col_offset,
                    f"collective {name} {ctx}"
                    + (f" ({frame.detail})" if frame.detail else ""),
                )
                break

    def _check_payload(self, node: ast.Call, name: str) -> None:
        """SPMD004: nondeterministic expressions as collective payloads."""
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            if isinstance(arg, ast.Starred):
                arg = arg.value
            if NONDET in self._eval(arg):
                self._finding(
                    "SPMD004",
                    node.lineno,
                    node.col_offset,
                    f"nondeterministic payload into collective {name} "
                    "(set iteration order / pid / time / unseeded RNG)",
                )
                break

    # Receiver classification ---------------------------------------------

    def _is_commlike(self, node: ast.AST) -> bool:
        """Whether ``node`` plausibly evaluates to a communicator."""
        reg = self.registry
        if isinstance(node, ast.Name):
            return "comm" in self.kinds.get(node.id, set()) or self._name_matches(
                node.id, reg.comm_name_suffixes
            )
        if isinstance(node, ast.Attribute):
            if node.attr in reg.comm_attr_names:
                return True
            key = self._pseudo_name(node)
            return key is not None and "comm" in self.kinds.get(key, set())
        return False

    def _is_forestlike(self, node: ast.AST) -> bool:
        """Whether ``node`` plausibly evaluates to a Forest."""
        reg = self.registry
        if isinstance(node, ast.Name):
            return "forest" in self.kinds.get(node.id, set()) or self._name_matches(
                node.id, reg.forest_name_suffixes
            )
        if isinstance(node, ast.Attribute):
            if node.attr in reg.forest_attr_names:
                return True
            key = self._pseudo_name(node)
            return key is not None and "forest" in self.kinds.get(key, set())
        return False

    @staticmethod
    def _pseudo_name(node: ast.AST) -> Optional[str]:
        """Key for tracking ``self.x``-style attribute targets."""
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
        ):
            return f"{node.value.id}.{node.attr}"
        return None

    def _infer_kinds(self, node: ast.AST) -> Set[str]:
        """Value-kind inference for assignments (set/comm/forest)."""
        reg = self.registry
        if isinstance(node, (ast.Set, ast.SetComp)):
            return {"set"}
        if isinstance(node, ast.Name):
            kinds = set(self.kinds.get(node.id, set()))
            if self._name_matches(node.id, reg.comm_name_suffixes):
                kinds.add("comm")
            if self._name_matches(node.id, reg.forest_name_suffixes):
                kinds.add("forest")
            return kinds
        if isinstance(node, ast.Attribute):
            if node.attr in reg.comm_attr_names:
                return {"comm"}
            if node.attr in reg.forest_attr_names:
                return {"forest"}
            return set()
        if isinstance(node, ast.IfExp):
            return self._infer_kinds(node.body) | self._infer_kinds(node.orelse)
        if isinstance(node, ast.Call):
            dotted = dotted_path(node.func, self.index) or ""
            last = dotted.split(".")[-1]
            if last in ("set", "frozenset"):
                return {"set"}
            if dotted.endswith("Forest.new") or last == "Forest":
                return {"forest"}
            if last in reg.layer_class_order or last == "wrap_comm":
                return {"comm"}
        return set()

    # Statement execution --------------------------------------------------

    def _exec_block(self, stmts: List[ast.stmt]) -> None:
        """Execute a statement list in order."""
        for stmt in stmts:
            self._exec(stmt)

    def _exec(self, stmt: ast.stmt) -> None:
        """Execute one statement."""
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # analyzed as their own functions by the engine
        if isinstance(stmt, ast.Assign):
            taint = self._eval(stmt.value)
            kinds = self._infer_kinds(stmt.value)
            for target in stmt.targets:
                self._assign(target, taint, kinds)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign(
                    stmt.target,
                    self._eval(stmt.value),
                    self._infer_kinds(stmt.value),
                )
        elif isinstance(stmt, ast.AugAssign):
            taint = self._eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                self.taints[stmt.target.id] = (
                    self.taints.get(stmt.target.id, EMPTY) | taint
                )
            else:
                key = self._pseudo_name(stmt.target)
                if key:
                    self.taints[key] = self.taints.get(key, EMPTY) | taint
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, ast.Return):
            taint = self._eval(stmt.value) if stmt.value is not None else EMPTY
            self.return_taint = self.return_taint | taint
            self._record_exit(stmt, "return")
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            ctl = self._control_taint()
            if ctl:
                # A rank-dependent break/continue makes the enclosing
                # loop's trip count rank-dependent.
                for frame in reversed(self.ctrl):
                    if frame.kind == "loop":
                        frame.taint = frame.taint | ctl
                        frame.detail = frame.detail or "trip count (via break)"
                        break
        elif isinstance(stmt, ast.If):
            self._branch(stmt.test, stmt.body, stmt.orelse, "branch predicate")
        elif isinstance(stmt, ast.While):
            taint = self._eval(stmt.test)
            frame = _Frame("loop", taint, stmt.lineno, "loop condition")
            self.ctrl.append(frame)
            self._exec_block(stmt.body)
            self._eval(stmt.test)
            self._exec_block(stmt.body)  # loop-carried taint
            self.ctrl.pop()
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            taint = self._eval(stmt.iter)
            if "set" in self._infer_kinds(stmt.iter):
                taint = taint | _NONDET
            self._assign(stmt.target, taint, set())
            frame = _Frame("loop", self._eval(stmt.iter), stmt.lineno, "trip count")
            self.ctrl.append(frame)
            self._exec_block(stmt.body)
            self._exec_block(stmt.body)  # loop-carried taint
            self.ctrl.pop()
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, ast.Try):
            swallowing = [
                h for h in stmt.handlers if not self._handler_reraises(h)
            ]
            if swallowing:
                kinds = ", ".join(
                    ast.unparse(h.type) if h.type is not None else "Exception"
                    for h in swallowing
                )
                self.ctrl.append(
                    _Frame("try-swallow", EMPTY, stmt.lineno, f"except {kinds}")
                )
                self._exec_block(stmt.body)
                self.ctrl.pop()
            else:
                self._exec_block(stmt.body)
            for handler in stmt.handlers:
                if handler.name:
                    self.taints[handler.name] = EMPTY
                self.ctrl.append(
                    _Frame(
                        "except",
                        EMPTY,
                        handler.lineno,
                        ast.unparse(handler.type) if handler.type else "Exception",
                    )
                )
                self._exec_block(handler.body)
                self.ctrl.pop()
            self._exec_block(stmt.orelse)
            self._exec_block(stmt.finalbody)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taint = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._assign(
                        item.optional_vars,
                        taint,
                        self._infer_kinds(item.context_expr),
                    )
            self._exec_block(stmt.body)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._eval(stmt.exc)
            # Rank-dependent raises abort the machine attributably (and
            # swallowed ones are SPMD003); not an early-exit finding.
        elif isinstance(stmt, ast.Assert):
            self._eval(stmt.test)
            if stmt.msg is not None:
                self._eval(stmt.msg)
        elif isinstance(stmt, ast.Delete):
            for t in stmt.targets:
                self._eval(t)
        elif isinstance(stmt, ast.Match):
            taint = self._eval(stmt.subject)
            for case in stmt.cases:
                frame = _Frame("branch", taint, case.pattern.lineno, "match subject")
                self.ctrl.append(frame)
                if case.guard is not None:
                    frame.taint = frame.taint | self._eval(case.guard)
                self._exec_block(case.body)
                self.ctrl.pop()
        # Import/Pass/Global/Nonlocal: nothing to do.

    def _branch(
        self,
        test: ast.expr,
        body: List[ast.stmt],
        orelse: List[ast.stmt],
        detail: str,
    ) -> None:
        """Visit an if/else with a control frame derived from the test."""
        taint = self._eval(test)
        self.ctrl.append(_Frame("branch", taint, test.lineno, detail))
        self._exec_block(body)
        self._exec_block(orelse)
        self.ctrl.pop()

    def _record_exit(self, stmt: ast.stmt, kind: str) -> None:
        """Note a function exit occurring under tainted control."""
        ctl = self._control_taint()
        if ctl:
            self.tainted_exits.append((stmt.lineno, kind, ctl))

    def _control_taint(self) -> Taint:
        """Union of taints of all enclosing branch/loop frames."""
        taint: Taint = EMPTY
        for frame in self.ctrl:
            if frame.kind in ("branch", "loop"):
                taint = taint | frame.taint
        return taint

    @staticmethod
    def _handler_reraises(handler: ast.ExceptHandler) -> bool:
        """Whether an except handler (transitively) re-raises."""
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
        return False

    def _assign(self, target: ast.expr, taint: Taint, kinds: Set[str]) -> None:
        """Bind taint (and kind) to an assignment target."""
        if isinstance(target, ast.Name):
            self.taints[target.id] = taint
            if kinds:
                self.kinds[target.id] = kinds
            else:
                self.kinds.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                if isinstance(elt, ast.Starred):
                    elt = elt.value
                self._assign(elt, taint, kinds)
        elif isinstance(target, ast.Attribute):
            key = self._pseudo_name(target)
            if key is not None:
                self.taints[key] = taint
                if kinds:
                    self.kinds[key] = kinds
        elif isinstance(target, ast.Subscript):
            # Writing into a container mixes the taint in.
            base = target.value
            if isinstance(base, ast.Name):
                self.taints[base.id] = self.taints.get(base.id, EMPTY) | taint

    # Expression evaluation ------------------------------------------------

    def _eval(self, node: Optional[ast.AST]) -> Taint:
        """Taint of one expression (emitting findings along the way)."""
        if node is None or isinstance(node, ast.Constant):
            return EMPTY
        if isinstance(node, ast.Name):
            return self.taints.get(node.id, EMPTY)
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.IfExp):
            taint = self._eval(node.test)
            self.ctrl.append(
                _Frame("branch", taint, node.lineno, "conditional expression")
            )
            result = self._eval(node.body) | self._eval(node.orelse)
            self.ctrl.pop()
            return result | taint
        if isinstance(node, ast.BoolOp):
            # Short-circuiting: later operands are control-dependent on
            # earlier ones.
            taint = self._eval(node.values[0])
            for value in node.values[1:]:
                self.ctrl.append(
                    _Frame("branch", taint, node.lineno, "short-circuit operand")
                )
                taint = taint | self._eval(value)
                self.ctrl.pop()
            return taint
        if isinstance(node, ast.BinOp):
            return self._eval(node.left) | self._eval(node.right)
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand)
        if isinstance(node, ast.Compare):
            taint = self._eval(node.left)
            for comp in node.comparators:
                taint = taint | self._eval(comp)
            return taint
        if isinstance(node, ast.Subscript):
            return self._eval(node.value) | self._eval(node.slice)
        if isinstance(node, ast.Slice):
            return (
                self._eval(node.lower)
                | self._eval(node.upper)
                | self._eval(node.step)
            )
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            taint = EMPTY
            for elt in node.elts:
                if isinstance(elt, ast.Starred):
                    elt = elt.value
                taint = taint | self._eval(elt)
            return taint
        if isinstance(node, ast.Dict):
            taint = EMPTY
            for k, v in zip(node.keys, node.values):
                taint = taint | self._eval(k) | self._eval(v)
            return taint
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self._eval_comprehension(node, [node.elt])
        if isinstance(node, ast.DictComp):
            return self._eval_comprehension(node, [node.key, node.value])
        if isinstance(node, ast.JoinedStr):
            taint = EMPTY
            for value in node.values:
                taint = taint | self._eval(value)
            return taint
        if isinstance(node, ast.FormattedValue):
            return self._eval(node.value)
        if isinstance(node, ast.NamedExpr):
            taint = self._eval(node.value)
            self._assign(node.target, taint, self._infer_kinds(node.value))
            return taint
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, ast.Lambda):
            return EMPTY  # bodies are not analyzed (documented limitation)
        if isinstance(node, ast.Await):
            return self._eval(node.value)
        return EMPTY

    def _eval_attribute(self, node: ast.Attribute) -> Taint:
        """Attribute access: propagate base taint plus rank-local seeds."""
        reg = self.registry
        taint = self._eval(node.value)
        if node.attr in reg.rank_attrs:
            return taint | _RANK
        if node.attr in reg.forest_rank_local_attrs and self._is_forestlike(
            node.value
        ):
            return taint | _RANK
        key = self._pseudo_name(node)
        if key is not None:
            taint = taint | self.taints.get(key, EMPTY)
        return taint

    def _eval_comprehension(
        self, node: ast.AST, elements: List[ast.expr]
    ) -> Taint:
        """Comprehensions: bind targets, honor tainted iters as loops."""
        taint: Taint = EMPTY
        frames = 0
        for gen in node.generators:  # type: ignore[attr-defined]
            it = self._eval(gen.iter)
            if "set" in self._infer_kinds(gen.iter):
                it = it | _NONDET
            self._assign(gen.target, it, set())
            cond = EMPTY
            for if_ in gen.ifs:
                cond = cond | self._eval(if_)
            self.ctrl.append(
                _Frame(
                    "loop",
                    self._eval(gen.iter) | cond,
                    node.lineno,
                    "comprehension iterable",
                )
            )
            frames += 1
            taint = taint | it | cond
        for elt in elements:
            taint = taint | self._eval(elt)
        for _ in range(frames):
            self.ctrl.pop()
        return taint

    # Call evaluation ------------------------------------------------------

    def _eval_args(self, node: ast.Call) -> Taint:
        """Union taint of every argument of a call."""
        taint: Taint = EMPTY
        for arg in node.args:
            if isinstance(arg, ast.Starred):
                arg = arg.value
            taint = taint | self._eval(arg)
        for kw in node.keywords:
            taint = taint | self._eval(kw.value)
        return taint

    def _eval_call(self, node: ast.Call) -> Taint:
        """Classify and evaluate one call expression."""
        reg = self.registry
        func = node.func
        dotted = dotted_path(func, self.index) or ""
        last = dotted.split(".")[-1] if dotted else ""

        # Comm / Forest / auxiliary collective methods -------------------
        if isinstance(func, ast.Attribute):
            attr = func.attr
            recv = func.value
            if attr in reg.comm_collectives and self._is_commlike(recv):
                self._eval(recv)
                self._note_collective(node, f"{attr}()")
                self._check_payload(node, f"{attr}()")
                self._eval_args(node)
                return (
                    EMPTY if attr in reg.uniform_comm_collectives else _RANK
                )
            if attr in reg.forest_collectives and (
                self._is_forestlike(recv) or dotted.endswith("Forest.new")
            ):
                self._eval(recv)
                self._note_collective(node, f"Forest.{attr}()")
                self._check_payload(node, f"Forest.{attr}()")
                self._eval_args(node)
                return (
                    EMPTY
                    if attr in reg.uniform_forest_collectives
                    else _RANK
                )
            if attr in reg.collective_methods:
                self._eval(recv)
                self._note_collective(node, f"{attr}()")
                self._check_payload(node, f"{attr}()")
                self._eval_args(node)
                spec = reg.collective_methods[attr]
                return EMPTY if spec.uniform_result else _RANK

        # Registry-listed module-level collective functions --------------
        spec = reg.collective_functions.get(dotted)
        if spec is not None:
            self._note_collective(node, f"{spec.name}()")
            self._check_payload(node, f"{spec.name}()")
            self._eval_args(node)
            return EMPTY if spec.uniform_result else _RANK

        # SPMD005: deprecated entry points -------------------------------
        if last in reg.deprecated_entry_points:
            self._finding(
                "SPMD005",
                node.lineno,
                node.col_offset,
                f"deprecated entry point {last}(); use "
                "Machine(RunConfig(...)).run(...)",
            )
            return self._eval_args(node)

        # SPMD006: hand-built layer stacks -------------------------------
        if last in reg.layer_class_order and not reg.is_layer_module(self.path):
            msg = (
                f"layer comm {last} constructed directly; use "
                "RunConfig(layers=[...]) or wrap_comm() so the canonical "
                "faults->sanitize->watchdog->trace order holds"
            )
            if node.args:
                inner = node.args[0]
                if isinstance(inner, ast.Call):
                    inner_dotted = dotted_path(inner.func, self.index) or ""
                    inner_last = inner_dotted.split(".")[-1]
                    if inner_last in reg.layer_class_order:
                        outer_i = reg.layer_class_order.index(last)
                        inner_i = reg.layer_class_order.index(inner_last)
                        if inner_i > outer_i:
                            msg = (
                                f"layer comms nested out of order: {last} "
                                f"wraps {inner_last}, but the canonical "
                                "order is faults->sanitize->watchdog->"
                                "trace; use wrap_comm()"
                            )
            self._finding("SPMD006", node.lineno, node.col_offset, msg)
            self._eval_args(node)
            return EMPTY

        # Nondeterminism seeds -------------------------------------------
        if dotted in reg.perprocess_calls:
            self._eval_args(node)
            return _BOTH
        if dotted in reg.nondet_calls:
            self._eval_args(node)
            return _NONDET
        rng = self._classify_rng(dotted, node)
        if rng is not None:
            self._eval_args(node)
            return rng

        # sorted() restores a deterministic order ------------------------
        if dotted == "sorted":
            taint = self._eval_args(node)
            return taint - _NONDET

        # Local functions via their summaries ----------------------------
        info = self._resolve_local(func)
        if info is not None and info is not self.info:
            s = info.summary
            arg_taint = self._eval_args(node)
            recv_taint = (
                self._eval(func.value)
                if isinstance(func, ast.Attribute)
                else EMPTY
            )
            if s.performs_collective:
                via = f" (via {s.collective_via})" if s.collective_via else ""
                self._note_collective(
                    node, f"{info.qualname}(){via}"
                )
                self._check_payload(node, f"{info.qualname}()")
            taint = s.intrinsic_taint
            if s.propagates:
                taint = taint | arg_taint | recv_taint
            return taint

        # Unknown call: propagate receiver and argument taint ------------
        recv_taint = (
            self._eval(func.value) if isinstance(func, ast.Attribute) else EMPTY
        )
        arg_taint = self._eval_args(node)
        if last in ("list", "tuple") and node.args:
            first = node.args[0]
            if "set" in self._infer_kinds(first):
                arg_taint = arg_taint | _NONDET
        return recv_taint | arg_taint

    def _classify_rng(self, dotted: str, node: ast.Call) -> Optional[Taint]:
        """Detect unseeded RNG draws/constructions; record SPMD007 sites."""
        reg = self.registry
        if not dotted:
            return None
        module, _, name = dotted.rpartition(".")
        if module in reg.rng_modules:
            if name in reg.rng_seeding_names:
                if not node.args and not node.keywords and name != "seed":
                    self.rng_sites.append((node, f"{dotted}()"))
                    return _NONDET
                return EMPTY
            self.rng_sites.append((node, f"{dotted}()"))
            return _NONDET
        return None

    def _resolve_local(self, func: ast.expr) -> Optional[FunctionInfo]:
        """Resolve a call target to a function defined in this module."""
        if isinstance(func, ast.Name):
            return self.index.functions.get(func.id)
        if isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ):
            base = func.value.id
            if base in ("self", "cls"):
                cls = self.info.class_name if self.info else None
                if cls is not None:
                    info = self.index.functions.get(f"{cls}.{func.attr}")
                    if info is not None:
                        return info
                return self.index.functions.get(func.attr)
            if base in self.index.classes:
                return self.index.functions.get(f"{base}.{func.attr}")
        return None

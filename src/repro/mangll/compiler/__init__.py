"""The mangll kernel compiler (ROADMAP item 2, the ffcx blueprint).

Lower -> plan -> emit -> cache, in four small modules:

* :mod:`~repro.mangll.compiler.ir` — the typed tensor IR (einsum,
  pointwise, gather, extern; explicit mutation statements).
* :mod:`~repro.mangll.compiler.lower` — mangll operators written into
  the IR, preserving the interpreted reference's exact float semantics.
* :mod:`~repro.mangll.compiler.passes` — CSE, loop-invariant hoisting
  (bind/run staging) and fusion (single-use inlining).
* :mod:`~repro.mangll.compiler.emit` — flat NumPy source emission, the
  bind-stage evaluator, and the communication-freedom AST guard.
* :mod:`~repro.mangll.compiler.cache` — in-memory + on-disk source
  cache with versioned fingerprints.

This module is the facade: ``compile_*`` returns a cached
:class:`CompiledKernel` per specialization key, and ``prepare_*``
evaluates its bind-stage values against one concrete mesh/model into
the ``P`` dict the kernel consumes.  Apps never call these directly —
they go through :mod:`repro.mangll.op`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from ..dgops import CONFORMING
from .cache import IR_VERSION, KernelCache, default_cache
from .emit import (
    Analysis,
    BindEvaluator,
    CompileError,
    Emitter,
    analyze,
    assert_communication_free,
)
from .lower import (
    DG_KINDS,
    FACE_K,
    cg_cache_key,
    cg_tables,
    dg_batch_envs,
    dg_cache_key,
    dg_tables,
    lower_cg_elem_laplacian,
    lower_cg_elem_mass,
    lower_dg_rhs,
    model_kind,
    permutation_rows,
    transfer_cache_key,
    transfer_source,
)

__all__ = [
    "IR_VERSION",
    "KernelCache",
    "CompileError",
    "CompiledKernel",
    "default_cache",
    "model_kind",
    "compile_dg_rhs",
    "prepare_dg_rhs",
    "compile_cg_elem",
    "prepare_cg_elem",
    "compile_transfer",
    "transfer_bind",
]


@dataclass
class CompiledKernel:
    """One compiled, cached kernel module plus its bind-side metadata."""

    key: str
    module: Dict[str, Any]
    #: per-function IR analyses, keyed by entry-point name (empty for
    #: template-emitted kernels such as the p-transfer)
    analyses: Dict[str, Analysis]
    #: extra metadata the prepare step needs (e.g. the dG model kind)
    meta: Dict[str, Any]

    def fn(self, name: str) -> Callable[..., Any]:
        """The kernel entry point called ``name``."""
        return self.module[name]


# --- dG RHS -----------------------------------------------------------------

_DG_PARAMS = ("q_local", "q_all", "t", "P", "model")
_DG_PROLOGUE = ("ne = q_local.shape[0]", "nf = q_local.shape[2]")


def compile_dg_rhs(
    dim: int,
    degree: int,
    nfields: int,
    kind: str,
    cache: Optional[KernelCache] = None,
) -> CompiledKernel:
    """Compile the dG RHS for one ``(dim, degree, nfields, kind)``."""
    cache = cache if cache is not None else default_cache()
    key = dg_cache_key(dim, degree, nfields, kind)
    analysis = analyze(lower_dg_rhs(dim, degree, nfields, kind))

    def build() -> str:
        return Emitter(analysis).emit("kernel", _DG_PARAMS, _DG_PROLOGUE)

    module = cache.get(key, build, validate=lambda b: assert_communication_free(b, key))
    return CompiledKernel(
        key=key, module=module, analyses={"kernel": analysis}, meta={"kind": kind}
    )


def prepare_dg_rhs(compiled: CompiledKernel, solver: Any, model: Any) -> Dict[str, Any]:
    """Evaluate bind-stage values for one mesh/model into the ``P`` dict.

    ``solver`` is the interpreted reference ``DGSolver`` the bound
    operator keeps — its precomputed tables feed the evaluator, so the
    compiled kernel starts from byte-identical inputs.

    For the elastic kind, conforming mortar batches are additionally
    *paired*: every geometric interior face with both sides local is
    handed to the kernel's ``face_pair`` region exactly once (mirror
    slots dropped, orientation permutations folded into the plus-side
    gather indices, batches merged by index signature), and the kernel
    scatters the one computed flux to both owning elements with
    opposite signs.  Faces whose partner is a ghost element keep their
    per-slot ``face_cf`` form.  This halves conforming-face work; it
    reorders lift accumulation, so only the tolerance-validated elastic
    kind does it.
    """
    kind = compiled.meta["kind"]
    an = compiled.analyses["kernel"]
    ev = BindEvaluator(an, dg_tables(solver, model, kind), model)
    P = ev.global_bind()
    envs = dg_batch_envs(solver)
    pair = kind == "elastic" and all(
        permutation_rows(env["tr"]) is not None
        for region, env in envs
        if env["_kind"] == CONFORMING
    )
    nl = solver.space.mesh.nelem_local
    fb = []
    groups: Dict[Tuple[bytes, bytes], Dict[str, Any]] = {}

    def slot(region: str, env: Dict[str, Any]) -> None:
        B = ev.batch_bind(region, env)
        em = env["em"]
        fidx = env["fidx"]
        B["k"] = FACE_K[region]
        B["ix"] = (em[:, None], fidx[None, :])
        # Unique rows -> the fancy -= lift is bit-identical to the
        # reference's unbuffered np.add.at; duplicated rows fall back.
        B["u"] = bool(len(np.unique(em)) == len(em))
        if region == "face_pair":
            ep = env["ep"]
            pidx = env["pidx"]
            B["ixp"] = (ep[:, None], pidx[None, :])
            B["up"] = bool(len(np.unique(ep)) == len(ep))
        fb.append(B)

    for region, env in envs:
        if not (pair and env["_kind"] == CONFORMING):
            slot(region, env)
            continue
        perm = permutation_rows(env["tr"])
        pidx2 = env["pidx"][perm]
        em, ep = env["em"], env["ep"]
        keep = (ep < nl) & (em < ep)  # one slot per local-local face
        rest = (ep >= nl) | (em == ep)  # ghost partner / self-adjacency
        if rest.any():
            sub = dict(env)
            for name in ("em", "ep", "n", "sj", "xf"):
                sub[name] = env[name][rest]
            slot("face_cf", sub)
        if keep.any():
            grp = groups.setdefault(
                (env["fidx"].tobytes(), pidx2.tobytes()),
                {"fidx": env["fidx"], "pidx": pidx2, "parts": []},
            )
            grp["parts"].append({name: env[name][keep] for name in ("em", "ep", "n", "sj", "xf")})
    for grp in groups.values():
        env_g: Dict[str, Any] = {"fidx": grp["fidx"], "pidx": grp["pidx"]}
        for name in ("em", "ep", "n", "sj", "xf"):
            env_g[name] = np.concatenate([p[name] for p in grp["parts"]])
        slot("face_pair", env_g)
    P["fb"] = fb
    return P


# --- CG element kernels -----------------------------------------------------


def compile_cg_elem(
    dim: int, degree: int, cache: Optional[KernelCache] = None
) -> CompiledKernel:
    """Compile the CG element kernels for one ``(dim, degree)``."""
    cache = cache if cache is not None else default_cache()
    key = cg_cache_key(dim, degree)
    npts = (degree + 1) ** dim
    an_lap = analyze(lower_cg_elem_laplacian(dim, degree))
    an_mass = analyze(lower_cg_elem_mass(dim, degree))

    def build() -> str:
        lap = Emitter(an_lap, pprefix="l.").emit("elem_laplacian", ("wdet", "P"))
        mass = Emitter(an_mass, pprefix="m.").emit("elem_mass", ("wdet", "P"))
        return f"_DIDX = np.arange({npts})\n\n\n" + lap + "\n\n" + mass

    module = cache.get(key, build, validate=lambda b: assert_communication_free(b, key))
    return CompiledKernel(
        key=key,
        module=module,
        analyses={"elem_laplacian": an_lap, "elem_mass": an_mass},
        meta={},
    )


def prepare_cg_elem(compiled: CompiledKernel, space: Any) -> Dict[str, Any]:
    """Bind-stage values (hoisted metric terms) for one CG space."""
    tables = cg_tables(space)
    P = BindEvaluator(compiled.analyses["elem_laplacian"], tables).global_bind("l.")
    P.update(BindEvaluator(compiled.analyses["elem_mass"], tables).global_bind("m."))
    m = space.mesh
    nl = m.nelem_local
    # The caller scales this by the coefficient exactly as the
    # reference does (wdet * coeff); hoisting the product is bit-safe.
    P["wdet0"] = m.detj[:nl] * m.weights[None, :]
    return P


# --- p-transfer -------------------------------------------------------------


def compile_transfer(
    dim: int, degree: int, cache: Optional[KernelCache] = None
) -> CompiledKernel:
    """Compile the p-transfer kernel for one ``(dim, degree)``."""
    cache = cache if cache is not None else default_cache()
    key = transfer_cache_key(dim, degree)

    def build() -> str:
        return transfer_source(dim, degree)

    module = cache.get(key, build, validate=lambda b: assert_communication_free(b, key))
    return CompiledKernel(key=key, module=module, analyses={}, meta={})


def transfer_bind() -> Dict[str, Any]:
    """The helper table the p-transfer kernel receives as ``P``."""
    from repro.p4est.octant import is_ancestor_pairwise, searchsorted_octants

    from ..transfer import nested_interp_matrix, nested_project_matrix

    return {
        "ss": searchsorted_octants,
        "iap": is_ancestor_pairwise,
        "interp": nested_interp_matrix,
        "project": nested_project_matrix,
    }

"""Backend-parameterized launch helpers for the parallel test suite.

Every test in this directory launches rank programs through these
helpers instead of calling :class:`repro.parallel.Machine` directly, so
one environment variable replays the whole suite on a different
execution backend:

    REPRO_TEST_BACKEND=process  PYTHONPATH=src python -m pytest tests/parallel

The default is the cheap ``thread`` backend.  The CI process leg sets
``REPRO_TEST_BACKEND=process``; process runs use the ``fork`` start
method so rank programs may be test-local closures and lambdas (``fork``
inherits them, ``spawn`` would have to pickle them).  Spawn-specific
coverage lives in ``test_process_backend.py`` with module-level
programs.
"""

import os

from repro.parallel import Machine, RunConfig

#: Which backend this test session runs against ("thread" or "process").
BACKEND = os.environ.get("REPRO_TEST_BACKEND", "thread")


def config(size, **kwargs):
    """A :class:`RunConfig` for ``size`` ranks on the session backend."""
    if BACKEND == "process":
        kwargs.setdefault("start_method", "fork")
    return RunConfig(size=size, backend=BACKEND, **kwargs)


def launch(size, fn, *args, store=None, **cfg_kwargs):
    """Run ``fn`` on ``size`` ranks; return the full :class:`RunResult`."""
    machine = Machine(config(size, **cfg_kwargs))
    return machine.run(fn, *args, store=store)


def run(size, fn, *args, **cfg_kwargs):
    """Run ``fn`` and return the per-rank values (old ``spmd_run`` shape)."""
    return launch(size, fn, *args, **cfg_kwargs).values


def run_report(size, fn, *args, **cfg_kwargs):
    """Run ``fn`` and return its report (old ``spmd_run_detailed`` shape)."""
    return launch(size, fn, *args, **cfg_kwargs).report


def run_recovering(size, fn, *args, **cfg_kwargs):
    """Run ``fn`` under the self-healing policy; return the RunResult."""
    cfg_kwargs.setdefault("recover", True)
    return launch(size, fn, *args, **cfg_kwargs)

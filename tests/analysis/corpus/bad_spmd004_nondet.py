"""Corpus: nondeterministic payloads fed into collectives."""

import glob
import os
import time


def pid_payload(comm):
    return comm.allreduce(os.getpid())  # expect: SPMD004


def time_payload(comm):
    t0 = time.perf_counter()
    return comm.allgather(t0)  # expect: SPMD004


def set_order_payload(comm, items):
    bag = set(items)
    ordered = list(bag)
    return comm.bcast(ordered)  # expect: SPMD004


def listing_payload(comm, root):
    names = os.listdir(root)
    return comm.allgather(names)  # expect: SPMD004


def glob_payload(comm):
    return comm.bcast(glob.glob("*.npy"))  # expect: SPMD004

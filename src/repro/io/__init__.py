"""Output: legacy-VTK meshes/fields, 2D SVG forest drawings, npz forest
checkpoints, and the durable generation checkpoint store."""

from repro.io.vtk import write_vtk
from repro.io.svg import draw_forest_svg
from repro.io.checkpoint import (
    CheckpointCorruptError,
    read_checkpoint,
    write_checkpoint,
)
from repro.io.store import DiskCheckpointStore

__all__ = [
    "write_vtk",
    "draw_forest_svg",
    "read_checkpoint",
    "write_checkpoint",
    "CheckpointCorruptError",
    "DiskCheckpointStore",
]

"""Chrome-trace JSON export and round-trip parsing."""

import json

import pytest

from repro.parallel import Trace
from tests.parallel.helpers import run_report
from repro.trace.export import chrome_trace, dump_chrome_trace, reports_from_chrome
from repro.trace.profile import RunProfile
from repro.trace.tracer import Tracer


def _traced_reports():
    def prog(comm):
        from repro.trace.tracer import phase

        with phase("AMR"):
            with phase("Balance"):
                comm.allreduce(1)
            with phase("Ghost"):
                comm.barrier()
        with phase("Solve"):
            comm.barrier()
        return None

    return run_report(3, prog, layers=[Trace()]).trace_reports


def test_chrome_trace_structure():
    reports = _traced_reports()
    data = chrome_trace(reports)
    assert data["displayTimeUnit"] == "ms"
    events = data["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    spans = [e for e in events if e["ph"] == "X"]
    assert len(meta) == 3  # one thread_name record per rank
    assert {m["args"]["name"] for m in meta} == {"rank 0", "rank 1", "rank 2"}
    # 4 spans per rank: AMR, Balance, Ghost, Solve.
    assert len(spans) == 3 * 4
    for ev in spans:
        assert ev["cat"] == "phase"
        assert ev["pid"] == 0
        assert ev["tid"] in (0, 1, 2)
        assert ev["ts"] >= 0.0 and ev["dur"] >= 0.0
        assert "path" in ev["args"] and "depth" in ev["args"]
    paths = {e["args"]["path"] for e in spans}
    assert paths == {"AMR", "AMR/Balance", "AMR/Ghost", "Solve"}


def test_round_trip_preserves_timeline(tmp_path):
    reports = _traced_reports()
    path = tmp_path / "run.trace.json"
    dump_chrome_trace(reports, str(path), indent=1)
    with open(path) as f:
        parsed = reports_from_chrome(f.read())
    assert len(parsed) == len(reports)
    for orig, back in zip(sorted(reports, key=lambda r: r.rank), parsed):
        assert back.rank == orig.rank
        assert len(back.events) == len(orig.events)
        o_ev = sorted(orig.events, key=lambda e: (e.start, e.depth))
        for a, b in zip(o_ev, back.events):
            assert b.name == a.name
            assert b.path == a.path
            assert b.depth == a.depth
            assert b.start == pytest.approx(a.start, abs=1e-9)
            assert b.duration == pytest.approx(a.duration, abs=1e-9)
        # Aggregates are rebuilt from events: same calls per path.
        for p, ps in orig.phases.items():
            assert back.phases[p].calls == ps.calls
            assert back.phases[p].seconds == pytest.approx(ps.seconds, rel=1e-6)


def test_round_trip_accepts_dict_and_profiles():
    reports = _traced_reports()
    parsed = reports_from_chrome(chrome_trace(reports))
    prof = RunProfile.from_reports(parsed)
    assert prof.nranks == 3
    assert prof.phase("AMR/Balance").calls == 1


def test_json_is_valid_and_loadable(tmp_path):
    tr = Tracer(0)
    with tr.phase("only"):
        pass
    path = tmp_path / "t.json"
    dump_chrome_trace([tr.report()], str(path))
    data = json.loads(path.read_text())
    assert any(e["name"] == "only" for e in data["traceEvents"])

"""CI smoke benchmark: per-element cost of the dG RHS, compiled vs interpreted.

Times one representative specialization per dimension (2D acoustic at
degree 3, 3D advection at degree 3) plus the 3D elastic fast path (the
seismic production kernel: paired conforming faces, fused gathers, BLAS
mortars) on a small adapted mesh, for both execution modes of
:class:`repro.mangll.op.DGOperator`, and writes
``bench_results/dg_rhs_smoke.json`` for ``tools/check_perf_smoke.py``.

Two numbers are gated (see the ``dg_rhs`` section of
``benchmarks/perf_baseline.json``):

* ``us_per_elem`` — absolute compiled cost in microseconds per element
  per RHS evaluation (noisy across runners, generous budget), and
* ``speedup`` — compiled vs interpreted in the *same process*, which
  cancels machine speed and pins the PR's >= 3x elastic-kernel win.

The bit-exact kinds are compared with ``np.array_equal``; the elastic
kind uses its documented tolerance contract (docs/KERNELS.md).

Run directly (``PYTHONPATH=src python benchmarks/bench_dg_rhs_smoke.py``)
or via pytest (``-m pytest benchmarks/bench_dg_rhs_smoke.py``).
"""

from __future__ import annotations

import time

import numpy as np

from repro.mangll.geometry import MultilinearGeometry
from repro.mangll.mesh import build_mesh
from repro.mangll.models import AcousticModel, AdvectionModel
from repro.mangll.op import DGOperator, MeshContext
from repro.p4est.balance import balance
from repro.p4est.builders import unit_cube, unit_square
from repro.p4est.forest import Forest
from repro.p4est.ghost import build_ghost
from repro.parallel import SerialComm

from benchmarks._util import emit, emit_json


def _setup(case: str):
    comm = SerialComm()
    if case == "d2":
        conn, level, degree = unit_square(), 3, 3
        model = AcousticModel(2, c=1.3, rho=0.7)
    elif case == "d3":
        conn, level, degree = unit_cube(), 2, 3
        model = AdvectionModel(3, np.array([1.0, 0.4, -0.2]))
    else:  # d3_elastic: the seismic production kernel
        from repro.apps.dgea.elastic import ElasticModel, homogeneous_material

        conn, level, degree = unit_cube(), 2, 3
        model = ElasticModel(3, homogeneous_material(1.0, 3.0, 1.5), bc="free")
    forest = Forest.new(conn, comm, level=level)
    forest.refine(
        callback=lambda o: (o.x < o.D.root_len // 2) & (o.level < level + 1),
        recursive=True,
    )
    balance(forest)
    ghost = build_ghost(forest)
    mesh = build_mesh(forest, MultilinearGeometry(conn), degree, ghost)
    ctx = MeshContext(forest, ghost, mesh, comm)
    nl = mesh.nelem_local
    x = mesh.coords[:nl]
    q = np.zeros((nl, mesh.npts, model.nfields))
    q[..., 0] = np.sin(3.0 * x[..., 0]) * np.cos(2.0 * x[..., 1])
    for f in range(1, model.nfields):
        q[..., f] = x[..., 0] * x[..., 1] + 0.1 * f
    return ctx, model, degree, q


def _time_rhs(op, q, *, repeats: int = 5, inner: int = 4) -> float:
    """Best-of-``repeats`` seconds for one RHS evaluation (warmed up)."""
    op.rhs(q, 0.0)  # warm caches / bind-stage lazies
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(inner):
            op.rhs(q, 0.1)
        best = min(best, (time.perf_counter() - t0) / inner)
    return best


def measure() -> dict:
    """Measure both modes for every smoke case; return the gate payload."""
    out: dict = {}
    for case in ("d2", "d3", "d3_elastic"):
        ctx, model, degree, q = _setup(case)
        nelem = ctx.mesh.nelem_local
        compiled = DGOperator(model, degree).bind(ctx)
        interp = DGOperator(model, degree, compile=False).bind(ctx)
        rc, ri = compiled.rhs(q, 0.1), interp.rhs(q, 0.1)
        if case == "d3_elastic":
            # Tolerance contract: the elastic lowering is mathematically
            # equivalent, not bit-identical (docs/KERNELS.md).
            assert np.abs(rc - ri).max() <= 1e-13 * np.abs(ri).max()
        else:
            assert np.array_equal(rc, ri)
        tc = _time_rhs(compiled, q)
        ti = _time_rhs(interp, q)
        out[case] = {
            "nelem": nelem,
            "npts": ctx.mesh.npts,
            "us_per_elem": 1e6 * tc / nelem,
            "us_per_elem_interpreted": 1e6 * ti / nelem,
            "speedup": ti / tc,
            "kernel_key": compiled.kernel_key,
        }
    return out


def test_dg_rhs_smoke():
    """Pytest entry point: measure, emit artifacts, sanity-check shape."""
    results = measure()
    lines = [
        "dG RHS per-element cost (compiled vs interpreted, 1 core)",
        f"{'case':>4} {'nelem':>6} {'npts':>5} {'us/elem':>9} "
        f"{'us/elem(interp)':>16} {'speedup':>8}",
    ]
    for case, r in results.items():
        lines.append(
            f"{case:>4} {r['nelem']:>6} {r['npts']:>5} {r['us_per_elem']:>9.1f} "
            f"{r['us_per_elem_interpreted']:>16.1f} {r['speedup']:>7.1f}x"
        )
    emit("dg_rhs_smoke", "\n".join(lines))
    emit_json("dg_rhs_smoke", results)
    for r in results.values():
        assert r["us_per_elem"] > 0 and r["speedup"] > 0


if __name__ == "__main__":
    test_dg_rhs_smoke()

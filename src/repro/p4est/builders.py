"""Built-in forest connectivities.

These mirror the ``p4est_connectivity_new_*`` constructors used in the
paper's experiments:

* :func:`unit_square` / :func:`unit_cube` — single tree.
* :func:`brick_2d` / :func:`brick_3d` — rectangular arrays of trees with
  optional periodicity (a fully periodic brick is a topological torus).
* :func:`moebius` — the 2D five-quadtree periodic Möbius strip (Fig. 1 top).
* :func:`rotcubes` — a six-octree forest with mutually rotated coordinate
  systems, five trees meeting along a central axis edge (Fig. 1 bottom);
  this is the configuration of the Fig. 4 weak-scaling study.
* :func:`shell` — the 24-octree cubed-sphere spherical shell of §III-B and
  §IV (6 caps x 4 patches, radial tree axis).
* :func:`two_trees_2d` — the two-quadtree strip of Fig. 2.

All topology is derived by shared-vertex matching; the geometric vertex
positions attached here are reference coordinates for the geometry maps
and visualization only.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.p4est.connectivity import Connectivity


def _conn(
    vertices: Sequence[Sequence[float]],
    t2v: Sequence[Sequence[int]],
    dim: int,
    extra=None,
    derive_faces: bool = True,
) -> Connectivity:
    return Connectivity(
        dim,
        np.asarray(vertices, dtype=float),
        np.asarray(t2v),
        extra_face_links=extra,
        derive_faces=derive_faces,
    )


def unit_square() -> Connectivity:
    """One quadtree covering the unit square."""
    verts = [(0, 0, 0), (1, 0, 0), (0, 1, 0), (1, 1, 0)]
    return _conn(verts, [[0, 1, 2, 3]], 2)


def unit_cube() -> Connectivity:
    """One octree covering the unit cube."""
    verts = [(x, y, z) for z in (0, 1) for y in (0, 1) for x in (0, 1)]
    return _conn(verts, [list(range(8))], 3)


def brick_2d(nx: int, ny: int, periodic_x: bool = False, periodic_y: bool = False) -> Connectivity:
    """An ``nx x ny`` array of quadtrees, optionally periodic per axis.

    Periodic axes require at least two trees along that axis (a single
    periodic tree cannot be expressed through shared vertices; use
    ``extra_face_links`` on :class:`Connectivity` directly for that).
    """
    if nx < 1 or ny < 1:
        raise ValueError("brick extents must be positive")
    if (periodic_x and nx < 2) or (periodic_y and ny < 2):
        raise ValueError("periodic axes need at least two trees")
    mx = nx if periodic_x else nx + 1
    my = ny if periodic_y else ny + 1

    def vid(i: int, j: int) -> int:
        return (j % my) * mx + (i % mx)

    def tid(i: int, j: int) -> int:
        return (j % ny) * nx + (i % nx)

    verts = [(i, j, 0.0) for j in range(my) for i in range(mx)]
    t2v = []
    for j in range(ny):
        for i in range(nx):
            t2v.append([vid(i, j), vid(i + 1, j), vid(i, j + 1), vid(i + 1, j + 1)])
    # Explicit axis-aligned face links (identity correspondence): vertex
    # matching is ambiguous for small periodic bricks.
    links = []
    for j in range(ny):
        for i in range(nx):
            if i + 1 < nx or periodic_x:
                links.append((tid(i, j), 1, tid(i + 1, j), 0, (0, 1)))
            if j + 1 < ny or periodic_y:
                links.append((tid(i, j), 3, tid(i, j + 1), 2, (0, 1)))
    return _conn(verts, t2v, 2, extra=links, derive_faces=False)


def brick_3d(
    nx: int,
    ny: int,
    nz: int,
    periodic_x: bool = False,
    periodic_y: bool = False,
    periodic_z: bool = False,
) -> Connectivity:
    """An ``nx x ny x nz`` array of octrees, optionally periodic per axis."""
    if min(nx, ny, nz) < 1:
        raise ValueError("brick extents must be positive")
    for p, n in ((periodic_x, nx), (periodic_y, ny), (periodic_z, nz)):
        if p and n < 2:
            raise ValueError("periodic axes need at least two trees")
    mx = nx if periodic_x else nx + 1
    my = ny if periodic_y else ny + 1
    mz = nz if periodic_z else nz + 1

    def vid(i: int, j: int, k: int) -> int:
        return ((k % mz) * my + (j % my)) * mx + (i % mx)

    def tid(i: int, j: int, k: int) -> int:
        return ((k % nz) * ny + (j % ny)) * nx + (i % nx)

    verts = [(i, j, k) for k in range(mz) for j in range(my) for i in range(mx)]
    t2v = []
    for k in range(nz):
        for j in range(ny):
            for i in range(nx):
                t2v.append(
                    [
                        vid(i, j, k),
                        vid(i + 1, j, k),
                        vid(i, j + 1, k),
                        vid(i + 1, j + 1, k),
                        vid(i, j, k + 1),
                        vid(i + 1, j, k + 1),
                        vid(i, j + 1, k + 1),
                        vid(i + 1, j + 1, k + 1),
                    ]
                )
    ident4 = (0, 1, 2, 3)
    links = []
    for k in range(nz):
        for j in range(ny):
            for i in range(nx):
                if i + 1 < nx or periodic_x:
                    links.append((tid(i, j, k), 1, tid(i + 1, j, k), 0, ident4))
                if j + 1 < ny or periodic_y:
                    links.append((tid(i, j, k), 3, tid(i, j + 1, k), 2, ident4))
                if k + 1 < nz or periodic_z:
                    links.append((tid(i, j, k), 5, tid(i, j, k + 1), 4, ident4))
    return _conn(verts, t2v, 3, extra=links, derive_faces=False)


def two_trees_2d() -> Connectivity:
    """Two quadtrees side by side (the Fig. 2 configuration)."""
    return brick_2d(2, 1)


def moebius() -> Connectivity:
    """Five quadtrees forming a periodic Möbius strip (Fig. 1 top).

    Trees 0-3 are glued side by side; tree 4 closes the ring with a flip
    of the transverse direction, producing the half twist.
    """
    n = 5
    # Vertex ids: b_j = j (one rail), t_j = n + j (other rail).  The
    # embedding is the genuine half-twist band p(th, s) with s = -+w: the
    # rail offset direction rotates by th/2, so at th = 2*pi the top rail
    # lands on the bottom rail's start — exactly the flipped gluing below.
    w = 0.4

    def rail(j: int, s: float):
        th = 2 * np.pi * j / n
        r = 1.0 + s * np.cos(th / 2)
        return (r * np.cos(th), r * np.sin(th), s * np.sin(th / 2))

    verts = [rail(j, -w) for j in range(n)] + [rail(j, +w) for j in range(n)]
    t2v = []
    for j in range(n - 1):
        t2v.append([j, j + 1, n + j, n + j + 1])
    # Last tree spans position n-1 -> 0 with the rails exchanged.
    t2v.append([n - 1, n, 2 * n - 1, 0])
    return _conn(verts, t2v, 2)


def rotcubes() -> Connectivity:
    """Six octrees with mutually rotated coordinate systems (Fig. 1 bottom).

    Five wedge cubes form a pinwheel around a central vertical edge (which
    is therefore shared by five trees), glued cyclically face 0 <-> face 2
    so consecutive trees are rotated relative to each other.  A sixth cube
    caps tree 0 from above through a 90-degree-rotated face gluing.  This
    configuration activates face, edge, and corner connections with
    nontrivial orientations, as required by the Fig. 4 study.
    """
    nw = 5
    # Vertex ids.
    c0, c1 = 0, 1  # central axis, bottom and top
    sb = [2 + j for j in range(nw)]  # spoke bottom
    st = [2 + nw + j for j in range(nw)]  # spoke top
    ob = [2 + 2 * nw + j for j in range(nw)]  # outer bottom
    ot = [2 + 3 * nw + j for j in range(nw)]  # outer top
    u = [2 + 4 * nw + j for j in range(4)]  # cap-top corners

    verts: List[Tuple[float, float, float]] = [(0, 0, 0), (0, 0, 1)]
    for ring, z, rad, shift in (
        (sb, 0.0, 1.0, 0.0),
        (st, 1.0, 1.0, 0.0),
        (ob, 0.0, 1.5, 0.5),
        (ot, 1.0, 1.5, 0.5),
    ):
        for j in range(nw):
            th = 2 * np.pi * (j + shift) / nw
            verts.append((rad * np.cos(th), rad * np.sin(th), z))
    # Cap-top corners sit above wedge 0's top quad.
    th0 = 0.0
    th1 = 2 * np.pi / nw
    ths = 2 * np.pi * 0.5 / nw
    verts.extend(
        [
            (0, 0, 2.0),
            (np.cos(th0), np.sin(th0), 2.0),
            (np.cos(th1), np.sin(th1), 2.0),
            (1.5 * np.cos(ths), 1.5 * np.sin(ths), 2.0),
        ]
    )

    t2v = []
    for j in range(nw):
        jn = (j + 1) % nw
        t2v.append([c0, sb[j], sb[jn], ob[j], c1, st[j], st[jn], ot[j]])
    # Cap: bottom face is wedge 0's top face, rotated one step around the
    # quad cycle c1 -> st0 -> ot0 -> st1; top face uses fresh vertices.
    t2v.append([st[0], ot[0], c1, st[1], u[1], u[3], u[0], u[2]])
    return _conn(verts, t2v, 3)


# Cubed-sphere shell --------------------------------------------------------------

# For each cube face (+x, -x, +y, -y, +z, -z): outward normal axis/sign and
# the (u, v) tangential axes chosen so that u x v points outward
# (right-handed trees with the radial direction as local z).
_SHELL_FACES = (
    (0, +1, 1, 2),  # +x: u=y, v=z
    (0, -1, 2, 1),  # -x: u=z, v=y
    (1, +1, 2, 0),  # +y: u=z, v=x
    (1, -1, 0, 2),  # -y: u=x, v=z
    (2, +1, 0, 1),  # +z: u=x, v=y
    (2, -1, 1, 0),  # -z: u=y, v=x
)


def connectivity_from_hexes(hex_corners: np.ndarray, decimals: int = 9) -> Connectivity:
    """Build a connectivity by geometric vertex identification.

    ``hex_corners`` is ``(K, 8, 3)``: corner positions of each hex in
    z-order.  Corners within ``10**-decimals`` are identified, which is
    how gluings (including rotated ones) are discovered.  This mirrors how
    ``p4est`` builds its shell/sphere connectivities from point sets.
    """
    hex_corners = np.asarray(hex_corners, dtype=np.float64)
    if hex_corners.ndim != 3 or hex_corners.shape[1:] != (8, 3):
        raise ValueError("hex_corners must have shape (K, 8, 3)")
    key_of: Dict[Tuple[float, ...], int] = {}
    verts: List[Tuple[float, float, float]] = []
    t2v = np.empty((len(hex_corners), 8), dtype=np.int64)
    for k in range(len(hex_corners)):
        for c in range(8):
            p = hex_corners[k, c]
            key = tuple(np.round(p, decimals) + 0.0)
            vid = key_of.get(key)
            if vid is None:
                vid = len(verts)
                key_of[key] = vid
                verts.append(tuple(p))
            t2v[k, c] = vid
    return Connectivity(3, np.asarray(verts), t2v)


def shell(inner_radius: float = 0.55, outer_radius: float = 1.0) -> Connectivity:
    """The 24-octree cubed-sphere spherical shell (§III-B, §IV-A).

    Each of the six cube faces carries a 2x2 array of patches; every patch
    is extruded radially from the inner to the outer sphere, with the tree's
    local z axis pointing outward.  Patch corner points on the reference
    cube surface are identified geometrically, which generates all intercap
    rotations automatically.  The default radii follow the earth-mantle
    aspect ratio (core-mantle boundary at ~0.55 earth radii).
    """
    if not 0 < inner_radius < outer_radius:
        raise ValueError("require 0 < inner_radius < outer_radius")
    hexes = []
    for axis, sgn, ua, va in _SHELL_FACES:
        for j in range(2):
            for i in range(2):
                quad = []
                for vv in (j - 1, j):
                    for uu in (i - 1, i):
                        p = np.zeros(3)
                        p[axis] = sgn
                        p[ua] = uu
                        p[va] = vv
                        quad.append(p)
                # Project the cube-surface quad onto the two spheres.
                quad = [q / np.linalg.norm(q) for q in quad]
                inner = [inner_radius * q for q in quad]
                outer = [outer_radius * q for q in quad]
                hexes.append(np.array(inner + outer))
    return connectivity_from_hexes(np.array(hexes))

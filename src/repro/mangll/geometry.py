"""Diffeomorphic geometry maps from the forest's reference cubes to space.

The forest's topology is purely integer (paper §II-D); geometry enters
only here, when elements are handed to the discretization.  A
:class:`Geometry` maps per-tree reference coordinates ``u in [0,1]^dim``
to physical points.  Provided maps:

* :class:`MultilinearGeometry` — blends the connectivity's tree corner
  vertices (exact for bricks; the generic default).
* :class:`ShellGeometry` — the cubed-sphere spherical shell of §III-B /
  §IV-A (24 trees, radial local z), gnomonic or equiangular.
* :class:`MoebiusGeometry` — the analytic half-twist band matching
  :func:`repro.p4est.builders.moebius`.

Physical points are always 3-vectors; planar 2D geometries set z = 0 and
the mesh layer works with the leading ``dim`` components.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from repro.p4est.connectivity import Connectivity


class Geometry(ABC):
    """Map from (tree, reference coords in [0,1]^dim) to physical space."""

    dim: int

    @abstractmethod
    def map_points(self, tree: int, u: np.ndarray) -> np.ndarray:
        """Map ``u`` of shape (n, dim) within ``tree`` to (n, 3) points."""

    def locate(self, x: np.ndarray, num_trees: int):
        """Invert the map: (tree id, reference coords) for physical points.

        Generic implementation: per-tree Newton iteration on
        :meth:`map_points` (finite-difference Jacobian), accepting the
        first tree whose reference coordinates land in [0, 1]^dim.
        Returns ``(tree (n,), u (n, dim))`` with tree = -1 where no tree
        contains the point.  Subclasses with analytic inverses override.
        """
        x = np.asarray(x, dtype=np.float64).reshape(-1, 3)
        n = len(x)
        trees = np.full(n, -1, dtype=np.int64)
        uu = np.zeros((n, self.dim))
        tol = 1e-10
        for i in range(n):
            for k in range(num_trees):
                u = np.full((1, self.dim), 0.5)
                ok = False
                for _ in range(60):
                    p = self.map_points(k, u)[0, : 3]
                    r = x[i] - p
                    if np.linalg.norm(r) < tol:
                        ok = True
                        break
                    # Finite-difference Jacobian of the map.
                    J = np.zeros((3, self.dim))
                    h = 1e-7
                    for a in range(self.dim):
                        up = u.copy()
                        up[0, a] += h
                        J[:, a] = (self.map_points(k, up)[0, :3] - p) / h
                    du, *_ = np.linalg.lstsq(J, r, rcond=None)
                    u[0] += np.clip(du, -0.5, 0.5)
                    u = np.clip(u, -0.5, 1.5)
                if ok and np.all(u[0] > -1e-9) and np.all(u[0] < 1 + 1e-9):
                    trees[i] = k
                    uu[i] = np.clip(u[0], 0.0, 1.0)
                    break
        return trees, uu


class MultilinearGeometry(Geometry):
    """Multilinear blend of each tree's corner vertices.

    Exact for affine/brick domains; for curved domains it is the chordal
    approximation of the macro-mesh.
    """

    def __init__(self, conn: Connectivity) -> None:
        self.conn = conn
        self.dim = conn.dim

    def map_points(self, tree: int, u: np.ndarray) -> np.ndarray:
        u = np.asarray(u, dtype=np.float64)
        corners = self.conn.vertices[self.conn.tree_to_vertex[tree]]
        n = len(u)
        out = np.zeros((n, 3))
        for c in range(self.conn.D.num_corners):
            w = np.ones(n)
            for a in range(self.dim):
                b = (c >> a) & 1
                w = w * (u[:, a] if b else (1.0 - u[:, a]))
            out += w[:, None] * corners[c]
        return out


class ShellGeometry(Geometry):
    """The 24-tree cubed-sphere spherical shell map.

    Tree ids follow :func:`repro.p4est.builders.shell`: tree = 4*face +
    2*j + i, with the face's (u, v) axes from the same table, and the
    tree's local z running radially from ``inner_radius`` to
    ``outer_radius``.  ``equiangular=True`` uses the tangent reparametri-
    zation that equalizes angular element sizes (the "modified cubed
    sphere transformation" of §IV-A).
    """

    def __init__(
        self,
        inner_radius: float = 0.55,
        outer_radius: float = 1.0,
        equiangular: bool = True,
    ) -> None:
        if not 0 < inner_radius < outer_radius:
            raise ValueError("require 0 < inner_radius < outer_radius")
        self.dim = 3
        self.r1 = inner_radius
        self.r2 = outer_radius
        self.equiangular = equiangular

    def map_points(self, tree: int, u: np.ndarray) -> np.ndarray:
        from repro.p4est.builders import _SHELL_FACES

        u = np.asarray(u, dtype=np.float64)
        face, rem = divmod(tree, 4)
        j, i = divmod(rem, 2)
        axis, sgn, ua, va = _SHELL_FACES[face]
        uu = (i - 1) + u[:, 0]  # in [-1, 1] across the cap
        vv = (j - 1) + u[:, 1]
        if self.equiangular:
            uu = np.tan(uu * np.pi / 4)
            vv = np.tan(vv * np.pi / 4)
        p = np.zeros((len(u), 3))
        p[:, axis] = sgn
        p[:, ua] = uu
        p[:, va] = vv
        p /= np.linalg.norm(p, axis=1, keepdims=True)
        r = self.r1 + u[:, 2] * (self.r2 - self.r1)
        return p * r[:, None]

    def locate(self, x: np.ndarray, num_trees: int = 24):
        """Analytic inverse of the cubed-sphere map."""
        from repro.p4est.builders import _SHELL_FACES

        x = np.asarray(x, dtype=np.float64).reshape(-1, 3)
        n = len(x)
        trees = np.full(n, -1, dtype=np.int64)
        uu = np.zeros((n, 3))
        r = np.linalg.norm(x, axis=1)
        inside = (r >= self.r1 - 1e-12) & (r <= self.r2 + 1e-12)
        d = x / np.maximum(r, 1e-300)[:, None]
        for idx in np.flatnonzero(inside):
            dv = d[idx]
            face = int(np.argmax(np.abs(dv)))
            sgn = 1 if dv[face] >= 0 else -1
            fidx = next(
                i for i, (a, s, _, _) in enumerate(_SHELL_FACES)
                if a == face and s == sgn
            )
            _, _, ua, va = _SHELL_FACES[fidx]
            gu = dv[ua] / (sgn * dv[face])
            gv = dv[va] / (sgn * dv[face])
            if self.equiangular:
                gu = np.arctan(gu) * 4 / np.pi
                gv = np.arctan(gv) * 4 / np.pi
            if abs(gu) > 1 + 1e-12 or abs(gv) > 1 + 1e-12:
                continue
            i = 1 if gu >= 0 else 0
            j = 1 if gv >= 0 else 0
            trees[idx] = fidx * 4 + j * 2 + i
            uu[idx, 0] = np.clip(gu - (i - 1), 0.0, 1.0)
            uu[idx, 1] = np.clip(gv - (j - 1), 0.0, 1.0)
            uu[idx, 2] = np.clip((r[idx] - self.r1) / (self.r2 - self.r1), 0.0, 1.0)
        return trees, uu


class MoebiusGeometry(Geometry):
    """Analytic half-twist band, consistent with ``builders.moebius``."""

    def __init__(self, width: float = 0.4, n_trees: int = 5) -> None:
        self.dim = 2
        self.w = width
        self.n = n_trees

    def map_points(self, tree: int, u: np.ndarray) -> np.ndarray:
        u = np.asarray(u, dtype=np.float64)
        th = 2 * np.pi * (tree + u[:, 0]) / self.n
        s = self.w * (2 * u[:, 1] - 1.0)
        r = 1.0 + s * np.cos(th / 2)
        out = np.empty((len(u), 3))
        out[:, 0] = r * np.cos(th)
        out[:, 1] = r * np.sin(th)
        out[:, 2] = s * np.sin(th / 2)
        return out


class BrickGeometry(Geometry):
    """Axis-aligned brick of unit trees, safe for periodic gluings.

    Periodic bricks wrap their vertex ids, so the multilinear blend of
    stored vertices folds back on itself; this map places tree
    ``(i, j, k)`` at offset ``(i, j, k)`` directly instead.
    """

    def __init__(self, nx: int, ny: int, nz: int = 1, dim: int = 2) -> None:
        self.dim = dim
        self.n = (nx, ny, nz)

    def map_points(self, tree: int, u: np.ndarray) -> np.ndarray:
        u = np.asarray(u, dtype=np.float64)
        nx, ny, nz = self.n
        k, rem = divmod(tree, nx * ny)
        j, i = divmod(rem, nx)
        out = np.zeros((len(u), 3))
        out[:, 0] = i + u[:, 0]
        out[:, 1] = j + u[:, 1]
        if self.dim == 3:
            out[:, 2] = k + u[:, 2]
        return out


def default_geometry(conn: Connectivity) -> Geometry:
    """The multilinear geometry over the connectivity's vertices."""
    return MultilinearGeometry(conn)

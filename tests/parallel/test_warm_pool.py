"""Tests for warm worker-pool reuse and the Machine lifecycle.

The pool is a process-backend feature (``RunConfig(warm_pool=True)``),
so this file builds explicit process configs instead of the session
backend helpers; the ``fork`` start method keeps launches cheap.  Rank
programs that should ride the pool are module-level (pool dispatch
pickles the job over the pipe regardless of start method).
"""

import multiprocessing
import os
import signal

import pytest

from repro.parallel import Machine, RunConfig, SpmdError
from repro.parallel.backend import get_backend

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="warm-pool tests use the fork start method",
)


def _cfg(size, **kwargs):
    kwargs.setdefault("start_method", "fork")
    kwargs.setdefault("warm_pool", True)
    return RunConfig(size=size, backend="process", **kwargs)


def rank_pid(comm):
    """Module-level rank program: who am I, in which process?"""
    return (comm.rank, os.getpid())


def rank_boom(comm):
    """Module-level rank program where rank 1 raises."""
    if comm.rank == 1:
        raise ValueError("boom")
    comm.barrier()


def rank_sigkill(comm):
    """Module-level rank program where rank 1 dies for real."""
    if comm.rank == 1:
        os.kill(os.getpid(), signal.SIGKILL)
    comm.barrier()
    return comm.rank


def test_warm_pool_reuses_worker_processes():
    with Machine(_cfg(3)) as m:
        first = m.run(rank_pid).values
        assert m.backend.pool_size() == 3
        second = m.run(rank_pid).values
        third = m.run(rank_pid).values
    # Same rank -> same OS process on every run: no cold starts.
    assert first == second == third
    assert len({pid for _, pid in first}) == 3


def test_without_warm_pool_every_run_cold_starts():
    with Machine(_cfg(2, warm_pool=False)) as m:
        first = m.run(rank_pid).values
        assert m.backend.pool_size() == 0
        second = m.run(rank_pid).values
    assert {pid for _, pid in first}.isdisjoint({pid for _, pid in second})


def test_close_retires_pool_and_machine_still_runs():
    m = Machine(_cfg(2))
    first = m.run(rank_pid).values
    m.close()
    assert m.backend.pool_size() == 0
    assert not multiprocessing.active_children()
    m.close()  # idempotent
    # A closed machine cold-starts a fresh pool.
    second = m.run(rank_pid).values
    assert {pid for _, pid in first}.isdisjoint({pid for _, pid in second})
    m.close()


def test_failed_attempt_tears_the_pool_down():
    with Machine(_cfg(2, timeout=10)) as m:
        warm = m.run(rank_pid).values
        with pytest.raises(SpmdError) as ei:
            m.run(rank_boom)
        assert ei.value.failed_rank == 1
        assert m.backend.pool_size() == 0
        assert not multiprocessing.active_children()
        # The next run rebuilds a fresh, again-reusable pool.
        rebuilt = m.run(rank_pid).values
        assert {pid for _, pid in warm}.isdisjoint({pid for _, pid in rebuilt})
        assert m.run(rank_pid).values == rebuilt


def test_sigkilled_pool_recovers_on_next_run():
    with Machine(_cfg(2, timeout=10)) as m:
        m.run(rank_pid)
        with pytest.raises(SpmdError) as ei:
            m.run(rank_sigkill)
        assert ei.value.failed_rank == 1
        assert m.backend.pool_size() == 0
        assert m.run(rank_pid).values == m.run(rank_pid).values


def test_unpicklable_job_falls_back_to_cold_start():
    with Machine(_cfg(2)) as m:
        warm = m.run(rank_pid).values
        token = object()  # unpicklable free variable
        fresh = m.run(lambda comm: (comm.rank, os.getpid(), id(token) > 0)).values
        # The closure cannot ride the pipe: fresh fork-inherited workers ran it.
        assert {p for _, p in warm}.isdisjoint({p for _, p, _ in fresh})
        assert all(flag for _, _, flag in fresh)


def test_size_change_retires_stale_pool():
    backend = get_backend("process", start_method="fork", persistent=True)
    with backend:
        two = Machine(_cfg(2), backend=backend)
        three = Machine(_cfg(3), backend=backend)
        two.run(rank_pid)
        assert backend.pool_size() == 2
        values = three.run(rank_pid).values
        assert len({pid for _, pid in values}) == 3
        assert backend.pool_size() == 3
    assert backend.pool_size() == 0


def test_injected_backend_is_not_closed_by_machine():
    backend = get_backend("process", start_method="fork", persistent=True)
    try:
        m = Machine(_cfg(2), backend=backend)
        m.run(rank_pid)
        m.close()  # machine does not own the backend
        assert backend.pool_size() == 2
    finally:
        backend.close()
    assert backend.pool_size() == 0


def test_injected_backend_must_match_config():
    backend = get_backend("thread")
    with pytest.raises(ValueError):
        Machine(_cfg(2), backend=backend)


def test_thread_machine_lifecycle_is_a_noop():
    with Machine(RunConfig(size=2, backend="thread")) as m:
        assert m.run(lambda c: c.rank).values == [0, 1]
    m.close()


def test_warm_pool_with_recovery_and_replacement():
    # The pool composes with the recovery stack: a recovering run that
    # warm-replaces a killed worker still parks a full-size, live pool.
    from repro.parallel import MemoryCheckpointStore, Watchdog

    store = MemoryCheckpointStore()
    cfg = _cfg(
        2,
        recover=True,
        max_retries=2,
        max_replacements=2,
        timeout=10,
        layers=[Watchdog(timeout=10)],
    )
    with Machine(cfg) as m:
        result = m.run(_die_once_then_count, store=store)
        assert result.values == [3, 3]
        assert m.backend.pool_size() == 2
        again = m.run(_count_only, store=store)
        assert again.values == [3, 3]


def _die_once_then_count(comm, store):
    """Recovering program: rank 1 dies once at step 1, then resumes."""
    start = store.load() or 0
    for step in range(start, 3):
        if comm.rank == 1 and step == 1 and start == 0:
            os.kill(os.getpid(), signal.SIGKILL)
        comm.barrier()
        store.save(step + 1)
    return store.load()


def _count_only(comm, store):
    """Read back the shared counter without touching it."""
    comm.barrier()
    return store.load()

"""Thread-backed SPMD execution of rank programs.

:func:`spmd_run` launches one thread per rank, each executing the same
``fn(comm, *args)`` against its own :class:`ThreadComm`.  Collectives are
implemented with a shared two-phase barrier protocol: every rank deposits
its contribution, the barrier's leader combines, a second barrier releases
the results.  The protocol is deterministic (results never depend on
thread scheduling) and exception-safe: a raising rank aborts the barrier,
unblocking all peers, and the original exception is re-raised from
:func:`spmd_run`.

This machine is the stand-in for MPI on the paper's Cray XT5: algorithms
exercise real distributed storage and real communication structure, while
:class:`~repro.parallel.stats.CommStats` meters the traffic for the
performance model.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.parallel.comm import Comm
from repro.parallel.ops import SUM, ReduceOp, identity_for, payload_nbytes
from repro.parallel.stats import CommStats

MAX_RANKS = 1024


class SpmdError(RuntimeError):
    """Raised on all surviving ranks when a peer rank fails."""


class _Shared:
    """State shared by the ranks of one SPMD run."""

    def __init__(self, size: int) -> None:
        self.size = size
        self.barrier = threading.Barrier(size)
        self.slots: List[Any] = [None] * size
        self.result: Any = None
        self.failure: Optional[BaseException] = None
        self.failed_rank: Optional[int] = None

    def abort(self, rank: int, exc: BaseException) -> None:
        if self.failure is None:
            self.failure = exc
            self.failed_rank = rank
        self.barrier.abort()


class ThreadComm(Comm):
    """Communicator handle for one rank of a thread-backed SPMD run."""

    def __init__(self, rank: int, shared: _Shared) -> None:
        self.rank = rank
        self.size = shared.size
        self.stats = CommStats()
        self._shared = shared
        self.compute_seconds = 0.0
        self._mark = time.thread_time()

    # Internal machinery ---------------------------------------------------

    def _wait(self) -> int:
        try:
            return self._shared.barrier.wait()
        except threading.BrokenBarrierError:
            raise SpmdError(
                f"SPMD run aborted (failure on rank {self._shared.failed_rank})"
            ) from None

    def _collect(self, contribution: Any, combine: Callable[[List[Any]], Any]) -> Any:
        """Two-phase collective: deposit, leader combines, all read."""
        shared = self._shared
        shared.slots[self.rank] = contribution
        if self._wait() == 0:
            shared.result = combine(list(shared.slots))
        self._wait()
        result = shared.result
        return result

    def _begin(self) -> None:
        now = time.thread_time()
        self.compute_seconds += now - self._mark

    def _end(self) -> None:
        self._mark = time.thread_time()

    # Collectives ----------------------------------------------------------

    def barrier(self) -> None:
        self._begin()
        self.stats.record("barrier", 0, 0)
        self._wait()
        self._wait()
        self._end()

    def bcast(self, obj: Any, root: int = 0) -> Any:
        self._begin()
        self._check_root(root)
        sent = payload_nbytes(obj) if self.rank == root else 0
        self.stats.record("bcast", self.size - 1 if self.rank == root else 0, sent)
        result = self._collect(obj if self.rank == root else None, lambda slots: slots[root])
        self._end()
        return result

    def gather(self, obj: Any, root: int = 0) -> Optional[List[Any]]:
        self._begin()
        self._check_root(root)
        self.stats.record("gather", 0 if self.rank == root else 1, payload_nbytes(obj))
        result = self._collect(obj, list)
        self._end()
        return result if self.rank == root else None

    def scatter(self, objs: Optional[List[Any]], root: int = 0) -> Any:
        self._begin()
        self._check_root(root)
        if self.rank == root:
            if objs is None or len(objs) != self.size:
                raise ValueError("scatter requires a list of one value per rank at root")
            sent = sum(payload_nbytes(o) for i, o in enumerate(objs) if i != root)
            self.stats.record("scatter", self.size - 1, sent)
        else:
            self.stats.record("scatter", 0, 0)
        result = self._collect(objs if self.rank == root else None, lambda slots: slots[root])
        self._end()
        return result[self.rank]

    def allgather(self, obj: Any) -> List[Any]:
        self._begin()
        self.stats.record("allgather", self.size - 1, payload_nbytes(obj))
        result = self._collect(obj, list)
        self._end()
        return list(result)

    def allreduce(self, value: Any, op: ReduceOp = SUM) -> Any:
        self._begin()
        self.stats.record("allreduce", self.size - 1, payload_nbytes(value))

        def combine(slots: List[Any]) -> Any:
            acc = slots[0]
            for v in slots[1:]:
                acc = op(acc, v)
            return acc

        result = self._collect(value, combine)
        self._end()
        return result

    def exscan(self, value: Any, op: ReduceOp = SUM) -> Any:
        self._begin()
        self.stats.record("exscan", 1, payload_nbytes(value))

        def combine(slots: List[Any]) -> List[Any]:
            prefixes = [identity_for(op, slots[0])]
            acc = slots[0]
            for v in slots[1:]:
                prefixes.append(acc)
                acc = op(acc, v)
            return prefixes

        result = self._collect(value, combine)
        self._end()
        return result[self.rank]

    def scan(self, value: Any, op: ReduceOp = SUM) -> Any:
        self._begin()
        self.stats.record("scan", 1, payload_nbytes(value))

        def combine(slots: List[Any]) -> List[Any]:
            prefixes = []
            acc = None
            for i, v in enumerate(slots):
                acc = v if i == 0 else op(acc, v)
                prefixes.append(acc)
            return prefixes

        result = self._collect(value, combine)
        self._end()
        return result[self.rank]

    def alltoall(self, objs: List[Any]) -> List[Any]:
        self._begin()
        if len(objs) != self.size:
            raise ValueError("alltoall requires one value per destination rank")
        sent = sum(payload_nbytes(o) for i, o in enumerate(objs) if i != self.rank)
        self.stats.record("alltoall", self.size - 1, sent)
        result = self._collect(list(objs), lambda slots: slots)
        received = [result[src][self.rank] for src in range(self.size)]
        self._end()
        return received

    def exchange(self, outbox: Dict[int, Any]) -> Dict[int, Any]:
        self._begin()
        for dest in outbox:
            if not 0 <= dest < self.size:
                raise ValueError(f"exchange destination {dest} out of range")
        nmsg = sum(1 for d in outbox if d != self.rank)
        nbytes = sum(payload_nbytes(v) for d, v in outbox.items() if d != self.rank)
        self.stats.record("exchange", nmsg, nbytes)
        all_outboxes = self._collect(dict(outbox), lambda slots: slots)
        inbox = {
            src: all_outboxes[src][self.rank]
            for src in range(self.size)
            if self.rank in all_outboxes[src]
        }
        self._end()
        return inbox

    def _check_root(self, root: int) -> None:
        if not 0 <= root < self.size:
            raise ValueError(f"root {root} out of range for size-{self.size} comm")


@dataclass
class RankOutcome:
    """Result and metering for one rank of an SPMD run."""

    value: Any
    stats: CommStats
    compute_seconds: float


@dataclass
class SpmdReport:
    """Everything :func:`spmd_run_detailed` learned about a run."""

    outcomes: List[RankOutcome]
    wall_seconds: float

    @property
    def values(self) -> List[Any]:
        return [o.value for o in self.outcomes]

    @property
    def max_compute_seconds(self) -> float:
        return max(o.compute_seconds for o in self.outcomes)

    def merged_stats(self) -> CommStats:
        merged = CommStats()
        for o in self.outcomes:
            for op, s in o.stats.ops.items():
                st = merged.ops.setdefault(op, type(s)())
                st.calls += s.calls
                st.messages += s.messages
                st.bytes_sent += s.bytes_sent
        return merged


def spmd_run_detailed(
    size: int, fn: Callable[..., Any], *args: Any, **kwargs: Any
) -> SpmdReport:
    """Run ``fn(comm, *args, **kwargs)`` SPMD on ``size`` ranks with metering."""
    if not 1 <= size <= MAX_RANKS:
        raise ValueError(f"size must be in [1, {MAX_RANKS}], got {size}")
    shared = _Shared(size)
    outcomes: List[Optional[RankOutcome]] = [None] * size

    def runner(rank: int) -> None:
        comm = ThreadComm(rank, shared)
        try:
            value = fn(comm, *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - must unblock peers
            shared.abort(rank, exc)
            return
        comm._begin()  # flush trailing compute time
        outcomes[rank] = RankOutcome(value, comm.stats, comm.compute_seconds)

    t0 = time.perf_counter()
    threads = [
        threading.Thread(target=runner, args=(r,), name=f"spmd-rank-{r}", daemon=True)
        for r in range(size)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0

    if shared.failure is not None:
        if isinstance(shared.failure, SpmdError):
            raise shared.failure
        raise shared.failure
    assert all(o is not None for o in outcomes)
    return SpmdReport([o for o in outcomes if o is not None], wall)


def spmd_run(size: int, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> List[Any]:
    """Run ``fn(comm, *args, **kwargs)`` SPMD on ``size`` ranks.

    Returns the list of per-rank return values.  If any rank raises, that
    exception propagates (peers are unblocked via barrier abort).
    """
    return spmd_run_detailed(size, fn, *args, **kwargs).values

"""The dG residual driver: volume terms, face fluxes, and time-step bound.

``DGSolver`` combines a :class:`~repro.mangll.dgops.DGSpace` with a flux
model (advection, elastic/acoustic waves, ...) and evaluates the
semi-discrete right-hand side ``dq/dt`` of the nodal dG method with LGL
collocation (diagonal mass matrix, §III-B).  All parallelism is one ghost
field exchange per evaluation.

Flux models implement:

* ``nfields`` — number of solution components;
* ``volume_flux(q, x) -> F`` with shape ``(..., nfields, dim)``;
* ``numerical_flux(qm, qp, n, x) -> F*.n`` from the minus side;
* ``boundary_state(qm, n, x, t) -> exterior trace`` for domain faces;
* ``max_wave_speed(q, x) -> per-element bound`` for the CFL estimate.
"""

from __future__ import annotations

import warnings
from typing import Optional

import numpy as np

from repro.mangll.dgops import BOUNDARY, COARSE, CONFORMING, FINE, DGSpace
from repro.mangll.mesh import face_node_indices
from repro.mangll.quadrature import differentiation_matrix
from repro.parallel.collectives import collective
from repro.parallel.comm import Comm
from repro.parallel.ops import MIN
from repro.trace.tracer import PHASE_APPLY, traced


class DGSolver:
    """Semi-discrete dG operator ``dq/dt = L(q, t)`` on a forest mesh."""

    def __init__(
        self,
        space: DGSpace,
        flux_model,
        comm: Comm,
        *,
        _deprecation_warning: bool = True,
    ) -> None:
        if _deprecation_warning:
            warnings.warn(
                "DGSolver() is deprecated; use "
                "repro.mangll.op.DGOperator(model, degree).bind(ctx) "
                "(compiled kernels, same bit-exact results)",
                DeprecationWarning,
                stacklevel=2,
            )
        self.space = space
        self.model = flux_model
        self.comm = comm
        m = space.mesh
        self.dim = space.dim
        self.nq = space.nq
        self._D = differentiation_matrix(self.nq)
        self._lift = space.lift_scale()  # (nelem_local, npts)
        self._normals = {}
        self._sjac = {}
        for f in range(2 * self.dim):
            n, sj = m.face_normals(f)
            self._normals[f] = n
            self._sjac[f] = sj
        self._wf = m.face_weights()

    # --- Volume term -----------------------------------------------------------

    def _volume(self, q_local: np.ndarray, t: float) -> np.ndarray:
        """sum_a D_a^T [ w detJ (dxi_a/dx . F) ] per local element."""
        m = self.space.mesh
        nl = m.nelem_local
        x = m.coords[:nl]
        F = self.model.volume_flux(q_local, x)  # (nl, npts, nf, dim)
        detw = (m.detj[:nl] * m.weights[None, :])[..., None]
        r = np.zeros_like(q_local)
        nq, dim = self.nq, self.dim
        nf = self.model.nfields
        jinv = m.jinv[:nl]  # (nl, npts, dim, dim): dxi_a/dx_c
        for a in range(dim):
            # Contract physical flux with the metric row a.
            Fa = np.einsum("epc,epfc->epf", jinv[:, :, a, :], F) * detw
            r += self._apply_dt(Fa, a)
        return r

    def _apply_dt(self, v: np.ndarray, axis: int) -> np.ndarray:
        """Apply D^T along reference axis ``axis`` of nodal data
        (nelem, npts, nfields)."""
        nq, dim = self.nq, self.dim
        ne, npts, nf = v.shape
        D = self._D
        if dim == 2:
            g = v.reshape(ne, nq, nq, nf)  # [e, ky, kx, f]
            if axis == 0:
                out = np.einsum("qi,eyqf->eyif", D, g)
            else:
                out = np.einsum("qj,eqxf->ejxf", D, g)
        else:
            g = v.reshape(ne, nq, nq, nq, nf)  # [e, kz, ky, kx, f]
            if axis == 0:
                out = np.einsum("qi,ezyqf->ezyif", D, g)
            elif axis == 1:
                out = np.einsum("qj,ezqxf->ezjxf", D, g)
            else:
                out = np.einsum("qk,eqyxf->ekyxf", D, g)
        return out.reshape(ne, npts, nf)

    # --- Face terms --------------------------------------------------------------

    def _faces(self, q_all: np.ndarray, t: float, r: np.ndarray) -> None:
        sp = self.space
        m = sp.mesh
        nl = m.nelem_local
        for batch in sp.batches:
            f = batch.fminus
            fidx = face_node_indices(self.dim, self.nq, f)
            if batch.kind in (CONFORMING, FINE, BOUNDARY):
                qm = q_all[batch.eminus][:, fidx]
                n = self._normals[f][batch.eminus]
                sj = self._sjac[f][batch.eminus]
                xf = m.coords[batch.eminus][:, fidx]
                if batch.kind == BOUNDARY:
                    qp = self.model.boundary_state(qm, n, xf, t)
                else:
                    pidx = face_node_indices(self.dim, self.nq, batch.fplus)
                    qsrc = q_all[batch.eplus][:, pidx]
                    qp = np.einsum("qs,esf->eqf", batch.transfer, qsrc)
                flux = self.model.numerical_flux(qm, qp, n, xf)
                contrib = flux * (sj * self._wf[None, :])[..., None]
                np.add.at(r, (batch.eminus[:, None], fidx[None, :]), -contrib)
            else:  # COARSE: evaluate at the fine partner's face nodes
                fp = batch.fplus
                pidx = face_node_indices(self.dim, self.nq, fp)
                qsrc = q_all[batch.eminus][:, fidx]  # my trace
                qm = np.einsum("qs,esf->eqf", batch.transfer, qsrc)
                qp = q_all[batch.eplus][:, pidx]
                n = -self._normals[fp][batch.eplus]
                sj = self._sjac[fp][batch.eplus]
                xf = m.coords[batch.eplus][:, pidx]
                flux = self.model.numerical_flux(qm, qp, n, xf)
                contrib = flux * (sj * self._wf[None, :])[..., None]
                lifted = np.einsum("qi,eqf->eif", batch.transfer, contrib)
                np.add.at(r, (batch.eminus[:, None], fidx[None, :]), -lifted)

    # --- Public API ------------------------------------------------------------------

    @collective("method", "rhs")
    @traced(PHASE_APPLY)
    def rhs(self, q_local: np.ndarray, t: float = 0.0) -> np.ndarray:
        """Evaluate dq/dt (collective: one ghost exchange)."""
        sp = self.space
        if q_local.ndim == 2:
            q_local = q_local[..., None]
            squeeze = True
        else:
            squeeze = False
        q_all = sp.exchange_ghost_fields(self.comm, q_local)
        r = self._volume(q_local, t)
        self._faces(q_all, t, r)
        r *= self._lift[..., None]
        return r[..., 0] if squeeze else r

    @collective("method", "stable_dt")
    def stable_dt(self, q_local: np.ndarray, cfl: float = 0.3) -> float:
        """Global CFL time-step bound (collective allreduce MIN)."""
        m = self.space.mesh
        nl = m.nelem_local
        if nl:
            speed = np.asarray(
                self.model.max_wave_speed(q_local, m.coords[:nl])
            )
            # Element length scale: min physical node spacing along axes,
            # conservatively vol^(1/dim) * min LGL gap.
            vols = m.element_volumes()[:nl]
            hchar = vols ** (1.0 / self.dim)
            from repro.mangll.quadrature import gauss_lobatto

            xi, _ = gauss_lobatto(self.nq)
            gap = 0.5 * (xi[1] - xi[0])  # fraction of the element
            dts = hchar * gap / np.maximum(speed, 1e-30)
            local = float(dts.min())
        else:
            local = np.inf
        return float(self.comm.allreduce(local, MIN)) * cfl

    @collective("method", "integrate_quantity")
    def integrate_quantity(self, q_local: np.ndarray) -> np.ndarray:
        """Global integral of each field (collective allreduce)."""
        m = self.space.mesh
        nl = m.nelem_local
        wdet = m.detj[:nl] * m.weights[None, :]
        if q_local.ndim == 2:
            q_local = q_local[..., None]
        local = np.einsum("ep,epf->f", wdet, q_local)
        from repro.parallel.ops import SUM

        return np.asarray(self.comm.allreduce(local, SUM))

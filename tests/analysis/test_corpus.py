"""Corpus tests: each rule fires exactly where marked, and nowhere else.

Every ``bad_*.py`` corpus file annotates its intentionally broken lines
with a trailing ``# expect: SPMDnnn`` marker; the lint findings must
match the marker set *exactly* (same rule on the same line, no extras).
Every ``good_*.py`` file collects known-good idioms — the laundered
uniform variants of the bad snippets — and must produce zero findings.
"""

import re
from pathlib import Path

import pytest

from repro.analysis import lint_file

CORPUS = Path(__file__).parent / "corpus"
_EXPECT = re.compile(r"#\s*expect:\s*(SPMD\d{3})")


def _expected(path):
    """The ``{(line, rule)}`` marker set of one corpus file."""
    out = set()
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        for m in _EXPECT.finditer(line):
            out.add((lineno, m.group(1)))
    return out


def _found(path):
    """The ``{(line, rule)}`` finding set the linter reports for a file."""
    return {(f.line, f.rule) for f in lint_file(path)}


@pytest.mark.parametrize(
    "path", sorted(CORPUS.glob("bad_*.py")), ids=lambda p: p.stem
)
def test_bad_corpus_fires_exactly_where_marked(path):
    expected = _expected(path)
    assert expected, f"{path.name} has no # expect: markers"
    assert _found(path) == expected


@pytest.mark.parametrize(
    "path", sorted(CORPUS.glob("good_*.py")), ids=lambda p: p.stem
)
def test_good_corpus_is_clean(path):
    assert _found(path) == set()


def test_corpus_covers_every_rule():
    """Each shipped rule (except the parse sentinel) has bad coverage."""
    from repro.analysis import RULES

    covered = set()
    for path in CORPUS.glob("bad_*.py"):
        covered |= {rule for _, rule in _expected(path)}
    assert covered == set(RULES) - {"SPMD000"}


def test_pr4_repro_is_the_minimized_bug():
    """The PR-4 divergence repro flags coarsen, and its fix is clean."""
    findings = lint_file(CORPUS / "bad_spmd001_branch.py")
    coarsen = [f for f in findings if "coarsen" in f.message]
    assert len(coarsen) == 1
    assert coarsen[0].rule == "SPMD001"
    assert coarsen[0].function == "pr4_adapt_coarsen"

"""Mantle rheology: the paper's nonlinear viscosity law and plate model.

Viscosity (§IV-A):

    eta(v, T) = c1 * exp(c2 / T) * (II(eps))^c3,   II = eps : eps,

with II the second invariant of the deviatoric strain rate (temperature-
dependent diffusion creep for c3 = 0, dislocation creep for c3 < 0),
plastic yielding at high strain rates (eta capped by tau_yield /
(2 sqrt(II))), global viscosity bounds, and narrow plate-boundary weak
zones where the viscosity is lowered by five orders of magnitude ("about
10 km wide zones, for which the viscosity is lowered by 5 orders").

The temperature input replaces the solution of the energy equation, as in
the paper's global runs ("this present-day temperature model replaces
solution of (2c)"); :func:`synthetic_temperature` supplies anomalies of
the same character (cold slabs, hot plumes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np


@dataclass
class PlateModel:
    """Plate-boundary weak zones on the spherical surface.

    Each boundary is a great-circle arc band: points whose unit direction
    lies within ``half_width`` (radians) of the great circle with the
    given pole, restricted to shallow depths.
    """

    poles: np.ndarray = field(
        default_factory=lambda: np.array(
            [[0.0, 0.0, 1.0], [0.83, 0.55, 0.0], [-0.5, 0.87, 0.0]]
        )
    )
    half_width: float = 0.015  # ~10 km at earth radius scale
    depth_extent: float = 0.05  # weak zones confined near the surface
    weakening: float = 1e-5  # five orders of magnitude

    def weak_factor(self, x: np.ndarray, outer_radius: float = 1.0) -> np.ndarray:
        """Multiplicative viscosity factor (1 away from boundaries)."""
        r = np.linalg.norm(x, axis=-1)
        rhat = x / np.maximum(r, 1e-300)[..., None]
        shallow = r > (1.0 - self.depth_extent) * outer_radius
        factor = np.ones(x.shape[:-1])
        for pole in self.poles:
            ang = np.abs(np.einsum("...c,c->...", rhat, pole / np.linalg.norm(pole)))
            in_band = (ang < self.half_width) & shallow
            factor = np.where(in_band, self.weakening, factor)
        return factor


@dataclass
class Rheology:
    """The nonlinear viscosity law with yielding and bounds."""

    c1: float = 1.0
    c2: float = 3.0  # exp(c2/T): ~e^3 contrast over T in (0.5, 1]
    c3: float = -0.3  # dislocation-creep strain-rate exponent
    tau_yield: float = 50.0
    eta_min: float = 1e-3
    eta_max: float = 1e4
    plates: PlateModel | None = None
    outer_radius: float = 1.0

    def viscosity(
        self,
        T: np.ndarray,
        strain_invariant: np.ndarray,
        x: np.ndarray | None = None,
    ) -> np.ndarray:
        """eta(T, II) with yielding, bounds, and weak zones.

        ``strain_invariant`` is II = eps:eps (nonnegative); ``x`` enables
        the plate weak zones.
        """
        T = np.asarray(T, dtype=np.float64)
        II = np.maximum(np.asarray(strain_invariant, dtype=np.float64), 1e-12)
        eta = self.c1 * np.exp(self.c2 / np.maximum(T, 0.05)) * II**self.c3
        # Plastic yielding: cap the shear stress 2 eta sqrt(II).
        eta_yield = self.tau_yield / (2.0 * np.sqrt(II))
        eta = np.minimum(eta, eta_yield)
        if self.plates is not None and x is not None:
            eta = eta * self.plates.weak_factor(x, self.outer_radius)
        return np.clip(eta, self.eta_min, self.eta_max)


def synthetic_temperature(x: np.ndarray, inner_radius: float = 0.55) -> np.ndarray:
    """A present-day-style temperature field on the shell (nondimensional).

    Conductive background from hot CMB (T=1) to cold surface (T=0.1),
    plus cold slab-like anomalies under the plate boundaries and a hot
    plume.  Values stay in (0.05, 1.05).
    """
    r = np.linalg.norm(x, axis=-1)
    t = (1.0 - (r - inner_radius) / max(1.0 - inner_radius, 1e-12)).clip(0, 1)
    T = 0.1 + 0.8 * t
    # Cold slab: a sheet descending at y ~ 0.
    slab = 0.25 * np.exp(-((x[..., 1] / 0.08) ** 2)) * np.exp(
        -(((r - 0.85) / 0.1) ** 2)
    )
    # Hot plume rising at a point on the +x axis.
    ctr = np.array([0.75, 0.0, 0.0])[: x.shape[-1]]
    plume = 0.3 * np.exp(-((np.linalg.norm(x - ctr, axis=-1) / 0.12) ** 2))
    return np.clip(T - slab + plume, 0.05, 1.1)

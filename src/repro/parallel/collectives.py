"""The machine-readable registry of collective operations.

Every algorithm in this repo depends on one invariant: *all ranks
execute an identical collective sequence*.  Two independent tools
enforce it — the runtime collective sanitizer
(:mod:`repro.parallel.sanitizer`) and the static analyzer
(:mod:`repro.analysis`) — and both must agree on what "a collective"
is.  This module is their single source of truth.

It provides:

* :class:`CollectiveSpec` — one collective operation's metadata: its
  name, the layer it belongs to (``comm`` primitive, ``forest``
  operation, or module-level ``function``), whether its *result* is
  uniform across ranks (uniform results launder rank-taint in the
  static analyzer), whether the runtime sanitizer must fingerprint its
  payload, and whether it is derived from other collectives (derived
  operations are validated through the primitives they call, so the
  sanitizer does not wrap them directly).
* The registry tables ``COMM_COLLECTIVES``, ``FOREST_COLLECTIVES`` and
  ``COLLECTIVE_FUNCTIONS`` plus name-set views of each.
* The :func:`collective` decorator that stamps the spec onto the
  actual methods and functions, so introspection (and the parity tests
  in ``tests/analysis/test_registry_parity.py``) can verify that the
  registry and the code agree.

Adding a collective to the system means adding it here first; the
parity tests fail until the registry, the sanitizer, and the marked
surface all tell the same story.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Tuple, TypeVar

__all__ = [
    "CollectiveSpec",
    "collective",
    "collective_spec",
    "COMM_COLLECTIVES",
    "FOREST_COLLECTIVES",
    "COLLECTIVE_FUNCTIONS",
    "COLLECTIVE_METHODS",
    "COMM_COLLECTIVE_NAMES",
    "FOREST_COLLECTIVE_NAMES",
    "SANITIZED_OPS",
    "PAYLOAD_CHECKED_OPS",
    "UNIFORM_RESULT_OPS",
]


@dataclass(frozen=True)
class CollectiveSpec:
    """Metadata for one collective operation.

    ``layer`` is ``"comm"`` for :class:`~repro.parallel.comm.Comm`
    primitives, ``"forest"`` for collective
    :class:`~repro.p4est.forest.Forest` methods, ``"function"`` for
    module-level collective entry points, and ``"method"`` for
    collective methods of auxiliary objects (ghost layers, node
    numberings, checkpoint policies).

    ``uniform_result`` records whether every rank receives the same
    return value.  The static analyzer uses it both ways: a uniform
    result *sanitizes* rank-taint (``allreduce`` is the canonical way
    to turn per-rank state into a safe branch predicate), while a
    non-uniform result (``gather``, ``scatter``, ``exchange`` inboxes)
    *seeds* rank-taint.

    ``payload_checked`` marks operations whose payload structure must
    agree across ranks; the runtime sanitizer fingerprints those
    payloads (elementwise reductions break on incongruent payloads,
    while the "v" collectives legitimately carry per-rank shapes).

    ``derived`` marks convenience operations implemented on top of the
    primitives (``Comm.reduce`` runs an ``allreduce``); the sanitizer
    validates them through the primitive they call.
    """

    name: str
    layer: str
    uniform_result: bool
    payload_checked: bool = False
    derived: bool = False


#: Collective primitives of the ``Comm`` ABC, plus derived conveniences.
COMM_COLLECTIVES: Tuple[CollectiveSpec, ...] = (
    CollectiveSpec("barrier", "comm", uniform_result=True),
    CollectiveSpec("bcast", "comm", uniform_result=True),
    CollectiveSpec("gather", "comm", uniform_result=False),
    CollectiveSpec("scatter", "comm", uniform_result=False),
    CollectiveSpec("allgather", "comm", uniform_result=True),
    CollectiveSpec("allreduce", "comm", uniform_result=True, payload_checked=True),
    CollectiveSpec("exscan", "comm", uniform_result=False, payload_checked=True),
    CollectiveSpec("scan", "comm", uniform_result=False, payload_checked=True),
    CollectiveSpec("alltoall", "comm", uniform_result=False),
    CollectiveSpec("exchange", "comm", uniform_result=False),
    CollectiveSpec("reduce", "comm", uniform_result=False, derived=True),
)

#: Collective methods of :class:`~repro.p4est.forest.Forest`.  All of
#: them end in (or consist of) an ``allgather``/``allreduce`` refresh of
#: the shared partition metadata, so every rank must call them in step.
FOREST_COLLECTIVES: Tuple[CollectiveSpec, ...] = (
    CollectiveSpec("new", "forest", uniform_result=False),
    CollectiveSpec("refine", "forest", uniform_result=False),
    CollectiveSpec("coarsen", "forest", uniform_result=False),
    CollectiveSpec("partition", "forest", uniform_result=False),
    CollectiveSpec("validate", "forest", uniform_result=True),
    CollectiveSpec("levels_histogram", "forest", uniform_result=True),
    CollectiveSpec("checksum", "forest", uniform_result=True),
)

#: Module-level collective entry points, keyed by their dotted import
#: path.  The static analyzer resolves call sites through each module's
#: import table, so aliased imports (``from repro.p4est.balance import
#: balance as bal``) still classify correctly.
COLLECTIVE_FUNCTIONS: Dict[str, CollectiveSpec] = {
    "repro.p4est.balance.balance": CollectiveSpec(
        "balance", "function", uniform_result=True
    ),
    "repro.p4est.ghost.build_ghost": CollectiveSpec(
        "build_ghost", "function", uniform_result=False
    ),
    "repro.p4est.nodes.lnodes": CollectiveSpec(
        "lnodes", "function", uniform_result=False
    ),
    "repro.p4est.validate.validate_forest": CollectiveSpec(
        "validate_forest", "function", uniform_result=True
    ),
    "repro.p4est.validate.forest_is_valid": CollectiveSpec(
        "forest_is_valid", "function", uniform_result=True
    ),
    "repro.p4est.balance.is_balanced": CollectiveSpec(
        "is_balanced", "function", uniform_result=True
    ),
    "repro.p4est.checkpoint.save": CollectiveSpec(
        "save", "function", uniform_result=False
    ),
    "repro.p4est.checkpoint.restore": CollectiveSpec(
        "restore", "function", uniform_result=False
    ),
    "repro.amr.driver.adapt_and_rebalance": CollectiveSpec(
        "adapt_and_rebalance", "function", uniform_result=False
    ),
    "repro.amr.driver.mark_fixed_fraction": CollectiveSpec(
        "mark_fixed_fraction", "function", uniform_result=False
    ),
}

#: Collective methods of auxiliary objects, matched by method name alone
#: (the names are unique within the codebase).
COLLECTIVE_METHODS: Dict[str, CollectiveSpec] = {
    "exchange_octant_data": CollectiveSpec(
        "exchange_octant_data", "method", uniform_result=False
    ),
    "scatter_forward": CollectiveSpec(
        "scatter_forward", "method", uniform_result=False
    ),
    "scatter_reverse_add": CollectiveSpec(
        "scatter_reverse_add", "method", uniform_result=False
    ),
    "after_adapt": CollectiveSpec("after_adapt", "method", uniform_result=True),
    # mangll dG operator surface (DGSolver and op.BoundDGOperator): one
    # ghost exchange per rhs, allreduce reductions for the other two.
    "rhs": CollectiveSpec("rhs", "method", uniform_result=False),
    "stable_dt": CollectiveSpec("stable_dt", "method", uniform_result=True),
    "integrate_quantity": CollectiveSpec(
        "integrate_quantity", "method", uniform_result=True
    ),
}

# Name-set views ----------------------------------------------------------

#: All Comm collective names, including derived conveniences.
COMM_COLLECTIVE_NAMES: FrozenSet[str] = frozenset(s.name for s in COMM_COLLECTIVES)

#: Comm operations the runtime sanitizer fingerprints directly (the
#: primitives; derived operations funnel through these).
SANITIZED_OPS: FrozenSet[str] = frozenset(
    s.name for s in COMM_COLLECTIVES if not s.derived
)

#: Comm operations whose payload structure the sanitizer must check.
PAYLOAD_CHECKED_OPS: FrozenSet[str] = frozenset(
    s.name for s in COMM_COLLECTIVES if s.payload_checked
)

#: Comm operations whose result is identical on every rank.
UNIFORM_RESULT_OPS: FrozenSet[str] = frozenset(
    s.name for s in COMM_COLLECTIVES if s.uniform_result
)

#: Forest collective method names.
FOREST_COLLECTIVE_NAMES: FrozenSet[str] = frozenset(
    s.name for s in FOREST_COLLECTIVES
)

_ALL_SPECS: Dict[Tuple[str, str], CollectiveSpec] = {
    **{("comm", s.name): s for s in COMM_COLLECTIVES},
    **{("forest", s.name): s for s in FOREST_COLLECTIVES},
    **{("function", s.name): s for s in COLLECTIVE_FUNCTIONS.values()},
    **{("method", s.name): s for s in COLLECTIVE_METHODS.values()},
}

_F = TypeVar("_F", bound=Callable[..., object])


def collective(layer: str, name: str) -> Callable[[_F], _F]:
    """Mark a function or method as the registered collective ``name``.

    The decorated callable gains a ``__collective__`` attribute holding
    its :class:`CollectiveSpec`.  Marking a callable the registry does
    not know is an error — the registry is updated first, then the
    code.
    """
    spec = _ALL_SPECS.get((layer, name))
    if spec is None:
        raise ValueError(f"no registered collective {name!r} in layer {layer!r}")

    def mark(fn: _F) -> _F:
        """Stamp ``fn`` with the resolved spec."""
        fn.__collective__ = spec  # type: ignore[attr-defined]
        return fn

    return mark


def collective_spec(obj: object) -> "CollectiveSpec | None":
    """The :class:`CollectiveSpec` stamped on ``obj``, or ``None``.

    Follows ``__wrapped__`` chains so tracing decorators between the
    marker and the implementation do not hide the spec.
    """
    seen = 0
    while obj is not None and seen < 8:
        spec = getattr(obj, "__collective__", None)
        if spec is not None:
            return spec  # type: ignore[return-value]
        obj = getattr(obj, "__wrapped__", None)
        seen += 1
    return None

"""Tests for smoothed-aggregation AMG: components, V-cycle convergence,
mesh-independence, and use as a CG preconditioner."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.solvers.amg import (
    AMGHierarchy,
    aggregate,
    estimate_rho,
    smoothed_aggregation,
    strength_graph,
    tentative_prolongator,
)
from repro.solvers.krylov import cg


def poisson_2d(n):
    """Standard 5-point Laplacian on an n x n grid (Dirichlet)."""
    I = sp.identity(n)
    T = sp.diags([-1, 2, -1], [-1, 0, 1], shape=(n, n))
    return (sp.kron(I, T) + sp.kron(T, I)).tocsr()


def elasticity_like(n):
    """A 2-component coupled elliptic operator (block Laplacian + coupling)."""
    A = poisson_2d(n)
    m = A.shape[0]
    C = sp.diags(np.full(m, 0.2))
    top = sp.hstack([2 * A, C])
    bot = sp.hstack([C, 2 * A])
    M = sp.vstack([top, bot]).tocsr()
    # Interleave components so block_size=2 refers to contiguous dofs.
    perm = np.arange(2 * m).reshape(2, m).T.ravel()
    P = sp.csr_matrix((np.ones(2 * m), (np.arange(2 * m), perm)))
    return (P @ M @ P.T).tocsr()


def test_strength_graph_keeps_diagonal_and_strong():
    A = sp.csr_matrix(np.array([[2.0, -1.0, 1e-6], [-1.0, 2.0, 0.0], [1e-6, 0.0, 2.0]]))
    S = strength_graph(A, theta=0.1)
    d = S.toarray()
    assert d[0, 1] != 0 and d[1, 0] != 0
    assert d[0, 2] == 0
    assert all(d[i, i] != 0 for i in range(3))


def test_aggregate_covers_all_nodes():
    A = poisson_2d(12)
    S = strength_graph(A)
    agg = aggregate(S)
    assert agg.min() >= 0
    n_agg = agg.max() + 1
    assert n_agg < A.shape[0] / 2  # genuine coarsening
    # Every aggregate nonempty.
    assert len(np.unique(agg)) == n_agg


def test_tentative_prolongator_partition():
    agg = np.array([0, 0, 1, 1, 2])
    T = tentative_prolongator(agg, 3)
    np.testing.assert_array_equal(T.sum(axis=1).ravel(), 1)
    Tb = tentative_prolongator(agg, 3, block_size=2)
    assert Tb.shape == (10, 6)


def test_estimate_rho_reasonable():
    A = poisson_2d(20)
    rho = estimate_rho(A)
    # D^-1 A for the Laplacian has spectral radius just under 2.
    assert 1.5 < rho < 2.05


@pytest.mark.parametrize("n", [16, 24])
def test_vcycle_reduces_error(n):
    A = poisson_2d(n)
    ml = smoothed_aggregation(A)
    rng = np.random.default_rng(0)
    xstar = rng.standard_normal(A.shape[0])
    b = A @ xstar
    x = np.zeros_like(b)
    norms = [np.linalg.norm(b)]
    for _ in range(12):
        x = x + ml.vcycle(b - A @ x)
        norms.append(np.linalg.norm(b - A @ x))
    factors = [norms[i + 1] / norms[i] for i in range(4, 11)]
    assert max(factors) < 0.35, factors  # healthy SA-AMG contraction
    np.testing.assert_allclose(x, xstar, atol=1e-3)


def test_convergence_mesh_independent():
    """Iteration count to 1e-8 stays ~flat across problem sizes (the
    optimal-scalability property demonstrated for the paper's solver)."""
    counts = []
    for n in (12, 24, 48):
        A = poisson_2d(n)
        ml = smoothed_aggregation(A)
        b = np.ones(A.shape[0])
        res = cg(lambda v: A @ v, b, M=ml.vcycle, tol=1e-8, maxiter=100)
        assert res.converged
        counts.append(res.iterations)
    assert max(counts) <= min(counts) + 6, counts
    assert max(counts) < 25


def test_amg_preconditioned_cg_beats_plain():
    A = poisson_2d(32)
    b = np.ones(A.shape[0])
    ml = smoothed_aggregation(A)
    plain = cg(lambda v: A @ v, b, tol=1e-8, maxiter=2000)
    prec = cg(lambda v: A @ v, b, M=ml.vcycle, tol=1e-8, maxiter=200)
    assert prec.converged
    assert prec.iterations < plain.iterations / 4


def test_block_problem():
    A = elasticity_like(10)
    ml = smoothed_aggregation(A, block_size=2)
    b = np.ones(A.shape[0])
    res = cg(lambda v: A @ v, b, M=ml.vcycle, tol=1e-8, maxiter=100)
    assert res.converged
    assert res.iterations < 40


def test_hierarchy_structure():
    A = poisson_2d(32)
    ml = smoothed_aggregation(A)
    assert ml.num_levels >= 3
    assert ml.operator_complexity() < 2.0
    # Coarsest level is genuinely small.
    assert ml.levels[-1].P.shape[1] <= 200


def test_bad_inputs():
    with pytest.raises(ValueError):
        smoothed_aggregation(sp.csr_matrix(np.ones((3, 4))))
    with pytest.raises(ValueError):
        smoothed_aggregation(poisson_2d(4), block_size=3)


def test_small_matrix_direct():
    A = poisson_2d(4)  # 16 dofs: below coarse_size, no levels
    ml = smoothed_aggregation(A)
    b = np.ones(16)
    x = ml.vcycle(b)
    np.testing.assert_allclose(A @ x, b, atol=1e-6)


def test_chebyshev_smoother_converges():
    A = poisson_2d(24)
    ml = smoothed_aggregation(A, smoother="chebyshev", presmooth=2, postsmooth=2)
    b = np.ones(A.shape[0])
    res = cg(lambda v: A @ v, b, M=ml.vcycle, tol=1e-8, maxiter=120)
    assert res.converged
    assert res.iterations < 40


def test_chebyshev_vs_sgs_both_mesh_independent():
    for smoother in ("chebyshev", "sgs"):
        counts = []
        for n in (12, 24):
            A = poisson_2d(n)
            ml = smoothed_aggregation(A, smoother=smoother)
            b = np.ones(A.shape[0])
            res = cg(lambda v: A @ v, b, M=ml.vcycle, tol=1e-8, maxiter=200)
            assert res.converged, smoother
            counts.append(res.iterations)
        assert counts[1] <= counts[0] + 10, (smoother, counts)


def test_unknown_smoother_rejected():
    with pytest.raises(ValueError):
        smoothed_aggregation(poisson_2d(8), smoother="ilu")

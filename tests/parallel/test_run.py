"""Tests for the RunConfig/Machine launch API and the deprecated shims."""

import pytest

from repro.parallel import (
    MAX_RANKS,
    MemoryCheckpointStore,
    FaultPlan,
    FaultyComm,
    Machine,
    ProcessBackend,
    ResilientResult,
    RunConfig,
    Sanitize,
    Trace,
    Watchdog,
    get_backend,
    spmd_run,
    spmd_run_detailed,
    spmd_run_resilient,
)


# RunConfig ------------------------------------------------------------------


def test_runconfig_validation():
    with pytest.raises(ValueError):
        RunConfig(size=0)
    with pytest.raises(ValueError):
        RunConfig(size=MAX_RANKS + 1)
    with pytest.raises(ValueError):
        RunConfig(size=2, backend="mpi")
    with pytest.raises(ValueError):
        RunConfig(size=2, max_retries=-1)
    with pytest.raises(ValueError):
        RunConfig(size=2, min_size=3)
    with pytest.raises(ValueError):
        RunConfig(size=2, min_size=0)
    with pytest.raises(ValueError):
        RunConfig(size=2, timeout=0.0)
    with pytest.raises(ValueError):
        RunConfig(size=2, shm_threshold_bytes=-1)


def test_runconfig_canonicalizes_layer_order():
    cfg = RunConfig(size=2, layers=[Trace(), Watchdog(), Sanitize()])
    assert [layer.kind for layer in cfg.layers] == ["sanitize", "watchdog", "trace"]


def test_runconfig_rejects_non_layers():
    with pytest.raises(TypeError):
        RunConfig(size=2, layers=["sanitize"])


# Machine --------------------------------------------------------------------


def test_machine_resolves_backend_once():
    assert Machine(RunConfig(size=2)).backend.name == "thread"
    assert Machine(RunConfig(size=2, backend="process")).backend.name == "process"


def test_machine_is_reusable():
    machine = Machine(RunConfig(size=3))
    assert machine.run(lambda c: c.allreduce(1)).values == [3, 3, 3]
    assert machine.run(lambda c: c.rank * 2).values == [0, 2, 4]


def test_machine_forwards_args_and_kwargs():
    def prog(comm, base, scale=1):
        return base + comm.rank * scale

    result = Machine(RunConfig(size=3)).run(prog, 100, scale=10)
    assert result.values == [100, 110, 120]


def test_machine_explicit_store_without_recover():
    store = MemoryCheckpointStore()

    def prog(comm, st):
        st.save({"from": comm.rank} if comm.rank == 0 else None)
        return comm.rank

    result = Machine(RunConfig(size=2)).run(prog, store=store)
    assert result.values == [0, 1]
    assert result.recovery is None
    assert store.load() == {"from": 0}


def test_plain_run_has_no_recovery_report():
    result = Machine(RunConfig(size=2)).run(lambda c: c.rank)
    assert result.recovery is None
    assert result.report.values == [0, 1]


def test_recovering_run_without_failures_reports_one_attempt():
    def prog(comm, store):
        return comm.allreduce(1)

    result = Machine(RunConfig(size=2, recover=True)).run(prog)
    assert result.values == [2, 2]
    assert result.recovery is not None
    assert result.recovery.attempts == 1
    assert result.recovery.recoveries == 0


# Backend registry -----------------------------------------------------------


def test_get_backend_rejects_unknown_name():
    with pytest.raises(ValueError):
        get_backend("mpi")


def test_process_backend_validates_options():
    with pytest.raises(ValueError):
        ProcessBackend(start_method="teleport")
    with pytest.raises(ValueError):
        ProcessBackend(shm_threshold_bytes=-1)


# Deprecated shims -----------------------------------------------------------


def test_spmd_run_shim_warns_and_delegates():
    with pytest.deprecated_call(match="RunConfig"):
        out = spmd_run(3, lambda c: c.allreduce(1))
    assert out == [3, 3, 3]


def test_spmd_run_detailed_shim_warns_and_delegates():
    with pytest.deprecated_call(match="RunConfig"):
        report = spmd_run_detailed(2, lambda c: (c.barrier(), c.rank)[1])
    assert report.values == [0, 1]
    assert report.merged_stats().ops["barrier"].calls == 2


def test_spmd_run_resilient_shim_warns_and_delegates():
    plan = FaultPlan.crash(rank=1, at_call=3)

    def wrapper(comm, attempt):
        return FaultyComm(comm, plan) if attempt == 0 else comm

    def prog(comm, store):
        acc = store.load() or 0
        for _ in range(4):
            acc += comm.allreduce(1)
            store.save(acc if comm.rank == 0 else None)
        return acc

    with pytest.deprecated_call(match="RunConfig"):
        result = spmd_run_resilient(2, prog, comm_wrapper=wrapper, max_retries=2)
    assert isinstance(result, ResilientResult)
    assert result.recovery.recoveries == 1
    assert result.recovery.ranks_lost == [1]
    assert result.values[0] == result.values[1]


def test_shims_match_new_api_results():
    def prog(comm):
        return comm.exscan(comm.rank + 1)

    with pytest.deprecated_call():
        old = spmd_run(4, prog)
    new = Machine(RunConfig(size=4)).run(prog).values
    assert old == new


def test_attempt_offset_shifts_the_layer_attempt_index():
    # A driver retrying *above* Machine.run (e.g. a service session loop)
    # bumps attempt_offset so attempt-0-keyed fault wrappers do not
    # re-fire on every outer retry.
    from repro.parallel import Faults, SpmdError

    plan = FaultPlan.crash(rank=0, at_call=0)

    def attempt_zero_only(comm, attempt):
        return FaultyComm(comm, plan) if attempt == 0 else comm

    def prog(comm):
        comm.barrier()
        return comm.rank

    with pytest.raises(SpmdError):
        Machine(RunConfig(size=2, layers=[Faults(wrapper=attempt_zero_only)])).run(prog)
    shifted = RunConfig(
        size=2, layers=[Faults(wrapper=attempt_zero_only)], attempt_offset=1
    )
    assert Machine(shifted).run(prog).values == [0, 1]
    with pytest.raises(ValueError):
        RunConfig(size=2, attempt_offset=-1)

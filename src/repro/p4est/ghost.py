"""Ghost layer construction and ghost data exchange.

``Ghost`` (paper §II-C/§II-E) collects one layer of non-local octants
touching the parallel partition boundary from the outside, sorted in the
SFC total order.  We also keep the *mirror* bookkeeping — which of my
octants were sent to which ranks — so that per-octant field data can later
be pushed to the neighbors' ghost slots with one sparse exchange
(:meth:`GhostLayer.exchange_octant_data`), the facility the dG and cG
discretizations of mangll are built on.

Construction mirrors Balance's neighborhood machinery: every local leaf is
sent to each rank owning leaves that overlap one of its same-size neighbor
regions (transformed across inter-tree links where needed).  Adjacency is
symmetric, so this sender-side rule delivers exactly one layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.p4est.balance import generate_neighbor_regions, split_by_dest
from repro.p4est.forest import Forest, octants_from_wire, octants_to_wire
from repro.parallel.collectives import collective
from repro.p4est.octant import Octants, neighborhood
from repro.trace.tracer import PHASE_GHOST, traced


@dataclass
class GhostLayer:
    """One layer of remote octants around this rank's partition segment.

    Attributes
    ----------
    octants:
        The ghost octants, in global SFC order (coordinates in their own
        tree's system).
    owners:
        Owning rank of each ghost octant.
    mirrors:
        Sorted local indices of my octants that appear in some other
        rank's ghost layer.
    mirror_map:
        For each neighbor rank, the sorted local indices sent to it.
    ghost_map:
        For each neighbor rank, the indices into ``octants`` that came
        from it (ascending, matching that rank's local SFC order).
    """

    octants: Octants
    owners: np.ndarray
    mirrors: np.ndarray
    mirror_map: Dict[int, np.ndarray] = field(default_factory=dict)
    ghost_map: Dict[int, np.ndarray] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.octants)

    @collective("method", "exchange_octant_data")
    def exchange_octant_data(self, comm, local_data: np.ndarray) -> np.ndarray:
        """Push per-octant data to neighbors; returns per-ghost data.

        ``local_data`` is indexed like the local octant array (first axis);
        the result is indexed like :attr:`octants`.  This is mangll's
        parallel scatter for element fields.
        """
        local_data = np.asarray(local_data)
        outbox = {
            rank: np.ascontiguousarray(local_data[idx])
            for rank, idx in self.mirror_map.items()
        }
        inbox = comm.exchange(outbox)
        shape = (len(self.octants),) + local_data.shape[1:]
        out = np.zeros(shape, dtype=local_data.dtype)
        for rank, payload in inbox.items():
            out[self.ghost_map[rank]] = payload
        return out


@traced(PHASE_GHOST)
@collective("function", "build_ghost")
def build_ghost(
    forest: Forest, codim: Optional[int] = None, layers: int = 1
) -> GhostLayer:
    """Collect the ghost layer (``Ghost``).

    ``codim`` chooses the adjacency that defines "touching": 1 for
    face-ghosts only, up to ``dim`` for full corner ghosts (default).
    ``layers`` widens the halo: the k-th layer contains remote leaves
    adjacent to the (k-1)-th (the paper: "multiple layers, for example as
    needed by a semi-Lagrangian method, can be enabled by a minor
    extension of Ghost").  Requires no particular balance state, though
    the discretizations assume a 2:1-balanced forest.
    """
    dim = forest.dim
    codim = dim if codim is None else codim
    if not 1 <= codim <= dim:
        raise ValueError(f"codim must be in [1, {dim}]")
    if layers < 1:
        raise ValueError("layers must be >= 1")
    if layers > 1:
        return _build_ghost_multilayer(forest, codim, layers)
    comm = forest.comm
    leaves = forest.local
    n = len(leaves)

    # For each leaf, which remote ranks own a region adjacent to it?  One
    # batched neighbor generation over every direction; exterior regions
    # are routed through the connectivity in indexed groups.
    regions_per_leaf: List[Tuple[np.ndarray, Octants]] = []
    if n:
        src_all, nb = neighborhood(leaves, codim)
        inside = nb.inside_root()
        if inside.any():
            regions_per_leaf.append((src_all[inside], nb[inside]))
        outside = ~inside
        if outside.any():
            regions_per_leaf.extend(
                _route_exterior_indexed(forest, nb[outside], src_all[outside])
            )

    # Resolve the owner rank range of every region and flatten into
    # (dest rank, source leaf) pairs; duplicate pairs collapse in one
    # vectorized pass (the former per-rank Python set accumulation).
    mine = comm.rank
    dest_parts: List[np.ndarray] = []
    src_parts: List[np.ndarray] = []
    for src_idx, regions in regions_per_leaf:
        if not len(regions):
            continue
        dests, ridx = forest.owner_segments(regions)
        keep = dests != mine
        dest_parts.append(dests[keep])
        src_parts.append(src_idx[ridx[keep]])

    mirror_map: Dict[int, np.ndarray] = {}
    if dest_parts:
        all_dests = np.concatenate(dest_parts)
        all_src = np.concatenate(src_parts)
        mirror_map = {p: idxs for p, idxs in split_by_dest(all_dests, all_src, n)}
    outbox = {p: octants_to_wire(leaves[idx]) for p, idx in mirror_map.items()}
    inbox = comm.exchange(outbox)

    parts: List[Octants] = []
    part_owner: List[np.ndarray] = []
    for src in sorted(inbox):
        got = octants_from_wire(dim, inbox[src])
        parts.append(got)
        part_owner.append(np.full(len(got), src, dtype=np.int64))
    if parts:
        ghosts = Octants.concat(parts)
        owners = np.concatenate(part_owner)
        order = ghosts.sort_order()
        ghosts = ghosts[order]
        owners = owners[order]
    else:
        ghosts = Octants.empty(dim)
        owners = np.empty(0, dtype=np.int64)

    ghost_map = {
        int(src): np.flatnonzero(owners == src) for src in np.unique(owners)
    }
    mirrors = (
        np.unique(np.concatenate([idx for idx in mirror_map.values()]))
        if mirror_map
        else np.empty(0, dtype=np.int64)
    )
    return GhostLayer(ghosts, owners, mirrors, mirror_map, ghost_map)


def _build_ghost_multilayer(forest: Forest, codim: int, layers: int) -> GhostLayer:
    """Widen a one-layer ghost halo by request/reply rounds.

    Each extra layer: compute the neighbor regions of the current halo
    locally (transforms are global knowledge), route them to their owner
    ranks, and have the owners reply with their leaves overlapping each
    region.  Mirror/ghost maps are extended so data exchange covers the
    whole halo.
    """
    from repro.p4est.balance import generate_neighbor_regions
    from repro.p4est.octant import is_ancestor_pairwise, searchsorted_octants

    comm = forest.comm
    dim = forest.dim
    ghost = build_ghost(forest, codim=codim, layers=1)
    mirror_sets: Dict[int, set] = {
        p: set(idx.tolist()) for p, idx in ghost.mirror_map.items()
    }
    g_octs = ghost.octants
    g_owner = ghost.owners

    def known_keys(octs: Octants) -> set:
        return set(zip(octs.tree.tolist(), octs.keys().tolist()))

    known = known_keys(forest.local) | known_keys(g_octs)

    frontier = g_octs
    for _ in range(layers - 1):
        all_done = comm.allreduce(int(len(frontier) == 0)) == comm.size
        if all_done:
            break
        regions = generate_neighbor_regions(forest.conn, frontier, codim)
        if len(regions):
            regions = regions.sorted().dedup()
        # Route regions to owners (excluding self: my own leaves are not
        # ghosts).
        wire_out: Dict[int, np.ndarray] = {}
        if len(regions):
            dests, ridx = forest.owner_segments(regions)
            keep = dests != comm.rank
            for p, idxs in split_by_dest(dests[keep], ridx[keep], len(regions)):
                wire_out[p] = octants_to_wire(regions[idxs])
        inbox = comm.exchange(wire_out)

        # Owners reply with local leaves overlapping the queried regions.
        reply: Dict[int, np.ndarray] = {}
        for src, wire in inbox.items():
            regs = octants_from_wire(dim, wire)
            mine = forest.local
            hit = np.zeros(len(mine), dtype=bool)
            if len(mine) and len(regs):
                lo_i = searchsorted_octants(mine, regs, side="right")
                hi_i = searchsorted_octants(
                    mine, regs.last_descendants(), side="right"
                )
                # Mark all [lo_i, hi_i) ranges at once with a difference
                # array instead of a per-region slice loop.
                acc = np.zeros(len(mine) + 1, dtype=np.int64)
                np.add.at(acc, lo_i, 1)
                np.add.at(acc, hi_i, -1)
                hit = np.cumsum(acc[:-1]) > 0
                pos = np.maximum(lo_i - 1, 0)
                anc = mine[pos]
                contain = (lo_i > 0) & is_ancestor_pairwise(anc, regs)
                hit[pos[contain]] = True
            idx = np.flatnonzero(hit)
            mirror_sets.setdefault(int(src), set()).update(idx.tolist())
            reply[int(src)] = octants_to_wire(mine[idx])
        answers = comm.exchange(reply)

        new_parts: List[Octants] = []
        new_owner_parts: List[np.ndarray] = []
        for src in sorted(answers):
            got = octants_from_wire(dim, answers[src])
            fresh = np.array(
                [
                    (t, k) not in known
                    for t, k in zip(got.tree.tolist(), got.keys().tolist())
                ],
                dtype=bool,
            )
            if fresh.any():
                kept = got[fresh]
                new_parts.append(kept)
                new_owner_parts.append(np.full(len(kept), src, dtype=np.int64))
                known |= known_keys(kept)
        if new_parts:
            frontier = Octants.concat(new_parts).sorted()
            add_owners = np.concatenate(new_owner_parts)
            merged = Octants.concat([g_octs, Octants.concat(new_parts)])
            g_owner = np.concatenate([g_owner, add_owners])
            order = merged.sort_order()
            g_octs = merged[order]
            g_owner = g_owner[order]
        else:
            frontier = Octants.empty(dim)

    mirror_map = {
        p: np.array(sorted(s), dtype=np.int64) for p, s in mirror_sets.items() if s
    }
    ghost_map = {
        int(src): np.flatnonzero(g_owner == src) for src in np.unique(g_owner)
    }
    mirrors = (
        np.unique(np.concatenate(list(mirror_map.values())))
        if mirror_map
        else np.empty(0, dtype=np.int64)
    )
    return GhostLayer(g_octs, g_owner, mirrors, mirror_map, ghost_map)


def _route_exterior_indexed(
    forest: Forest, ext: Octants, src_idx: np.ndarray
) -> List[Tuple[np.ndarray, Octants]]:
    """Like balance's exterior routing, but keeps source-leaf indices.

    ``forest`` only needs a ``conn`` attribute (the nodes module passes a
    minimal duck-typed carrier).
    """
    from repro.p4est.balance import route_exterior_indexed

    return route_exterior_indexed(forest.conn, ext, src_idx)

"""Corpus: collectives inside exception-swallowing ``try`` blocks.

A rank that swallows a failure mid-collective silently drops out of the
collective sequence while its peers continue — the hang the watchdog
exists to diagnose.
"""


def swallow_around_collective(comm, payload):
    try:
        comm.allreduce(payload)  # expect: SPMD003
    except Exception:
        pass


def swallow_in_handler(comm, payload):
    try:
        risky = payload / payload
    except ZeroDivisionError:
        risky = comm.bcast(payload)  # expect: SPMD003
    return risky

"""The ``spmdlint`` rule packs.

Each rule names one statically decidable way a rank program can break
the SPMD-uniformity contract the paper's algorithms (and our runtime
sanitizer) rely on.  The analyzer in :mod:`repro.analysis.taint` emits
findings tagged with these identifiers; this module is the one place
their numbering, severity, and prose live, consumed by the CLI
(``--list-rules``), the docs table in ``docs/CORRECTNESS.md``, and the
corpus tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["Rule", "RULES", "rule", "PARSE_ERROR"]


@dataclass(frozen=True)
class Rule:
    """One lint rule: identifier, severity, and what it catches."""

    id: str
    title: str
    severity: str  # "error" | "warning"
    description: str


#: SPMD000 is reserved for files the analyzer cannot parse.
PARSE_ERROR = Rule(
    "SPMD000",
    "unparseable file",
    "error",
    "The file could not be parsed as Python; nothing in it was checked.",
)

_RULES: Tuple[Rule, ...] = (
    PARSE_ERROR,
    Rule(
        "SPMD001",
        "collective under rank-dependent branch",
        "error",
        "A collective operation is control-dependent on rank-local state "
        "(comm.rank, local leaf data, gather/scatter/exchange results): "
        "some ranks would enter the collective while others skip it, "
        "diverging the collective sequence.  Make the predicate uniform "
        "first (e.g. allreduce it) or hoist the collective out of the "
        "branch.  Also reported when a rank-dependent return/break/"
        "continue can skip a later collective (a rank-dependent raise is "
        "not flagged: an uncaught exception aborts the machine "
        "attributably instead of diverging it).",
    ),
    Rule(
        "SPMD002",
        "rank-dependent loop trip count around a collective",
        "error",
        "A loop whose iteration count depends on rank-local state "
        "contains a collective: ranks would execute different numbers of "
        "collective calls.  Derive the trip count from uniform state "
        "(allreduce the continuation predicate, as Ghost/Balance do).",
    ),
    Rule(
        "SPMD003",
        "collective inside exception-swallowing try",
        "error",
        "A collective runs inside a try whose except handler swallows "
        "the exception (or inside a handler itself).  If the exception "
        "fires on a subset of ranks, those ranks silently fall out of "
        "the collective sequence while the rest proceed.  Re-raise, or "
        "make failure collective (allreduce an ok-flag) before handling.",
    ),
    Rule(
        "SPMD004",
        "nondeterministic payload into a collective",
        "error",
        "A collective payload is derived from nondeterministic state "
        "(set iteration order, os.getpid, time, unseeded RNG).  Per-rank "
        "payload *values* are what collectives are for, but "
        "nondeterministic ones make runs irreproducible and can diverge "
        "payload structure.  Sort set-derived sequences and seed RNGs.",
    ),
    Rule(
        "SPMD005",
        "deprecated spmd_run* entry point",
        "warning",
        "spmd_run/spmd_run_detailed/spmd_run_resilient are deprecated "
        "shims; use Machine(RunConfig(...)).run(...) from "
        "repro.parallel.run.",
    ),
    Rule(
        "SPMD006",
        "comm layer stack built by hand",
        "warning",
        "A layer decorator comm (FaultyComm/SanitizedComm/WatchdogComm/"
        "TracingComm) is constructed directly instead of through "
        "RunConfig(layers=[...]) or repro.parallel.layers.wrap_comm, "
        "bypassing the canonical faults->sanitize->watchdog->trace "
        "ordering (and flagged as an error if the nesting order is "
        "visibly wrong).",
    ),
    Rule(
        "SPMD007",
        "unseeded RNG in an SPMD function",
        "warning",
        "A function that communicates (or receives a comm/forest) draws "
        "from an unseeded global RNG (random.*, numpy.random.*, "
        "default_rng()).  Ranks see different, irreproducible streams; "
        "any decision fed by them diverges.  Use a Generator seeded "
        "uniformly (or per-rank from a uniform base seed, on purpose).",
    ),
)

#: All rules keyed by identifier.
RULES: Dict[str, Rule] = {r.id: r for r in _RULES}


def rule(rule_id: str) -> Rule:
    """The :class:`Rule` for ``rule_id`` (raises ``KeyError`` if unknown)."""
    return RULES[rule_id]

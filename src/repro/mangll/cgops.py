"""Continuous-Galerkin operators on adaptive forest meshes.

Builds on ``Nodes`` (paper §II-E): element matrices are assembled over the
global cG numbering with hanging-node constraints applied at the element
level.  For an element with hanging faces/edges, its slots hold the
*parent* entity's independent unknowns (see :mod:`repro.p4est.nodes`); the
constraint operator ``R_e`` evaluates the element's true nodal trace from
those parent values (tensor child-interpolation), so the assembled system
involves independent unknowns only:

    ``A = sum_e R_e^T A_e R_e``,  ``b = sum_e R_e^T b_e``.

Rows/columns live on each rank's local node ids; the distributed matvec
is a local sparse product followed by a reverse-add scatter over shared
nodes, and inner products reduce over owned nodes (one allreduce).
"""

from __future__ import annotations

import warnings
from functools import lru_cache
from typing import Callable, Dict, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.mangll.mesh import Mesh, face_node_indices
from repro.mangll.quadrature import (
    child_interpolation_matrices,
    differentiation_matrix,
)
from repro.p4est.connectivity import (
    edge_axis,
    edge_transverse_sides,
    face_axis_side,
    face_tangential_axes,
)
from repro.p4est.nodes import LNodes
from repro.parallel.comm import Comm
from repro.parallel.ops import SUM


@lru_cache(maxsize=64)
def gradient_matrices(dim: int, nq: int) -> Tuple[np.ndarray, ...]:
    """Dense nodal derivative operators along each reference axis."""
    D = differentiation_matrix(nq)
    I = np.eye(nq)
    if dim == 2:
        return (np.kron(I, D), np.kron(D, I))
    return (
        np.kron(I, np.kron(I, D)),
        np.kron(I, np.kron(D, I)),
        np.kron(np.kron(D, I), I),
    )


@lru_cache(maxsize=256)
def edge_node_indices(nq: int, edge: int) -> np.ndarray:
    """Volume-node indices along a 3D element edge, in axis order."""
    axis = edge_axis(edge)
    sides = edge_transverse_sides(edge)
    coord = [0, 0, 0]
    for a, s in sides.items():
        coord[a] = 0 if s == 0 else nq - 1
    idx = []
    for i in range(nq):
        c = list(coord)
        c[axis] = i
        idx.append(c[0] + nq * (c[1] + nq * c[2]))
    out = np.array(idx, dtype=np.int64)
    out.setflags(write=False)
    return out


@lru_cache(maxsize=4096)
def hanging_operator(
    dim: int, nq: int, hf: Tuple[int, ...], he: Tuple[int, ...]
) -> np.ndarray:
    """Element constraint operator R for a hanging configuration.

    ``hf[f]`` is -1 or the child position within the parent face; ``he``
    likewise per edge (3D; pass () in 2D).  Rows of R on hanging entities
    interpolate the parent values stored in the entity's slots; all other
    rows are identity.
    """
    npts = nq**dim
    R = np.eye(npts)
    I0, I1 = child_interpolation_matrices(nq)
    kids = (I0, I1)
    for f, pos in enumerate(hf):
        if pos < 0:
            continue
        fidx = face_node_indices(dim, nq, f)
        if dim == 2:
            M = kids[pos]
        else:
            M = np.kron(kids[(pos >> 1) & 1], kids[pos & 1])
        R[fidx, :] = 0.0
        R[np.ix_(fidx, fidx)] = M
    if dim == 3:
        for e, pos in enumerate(he):
            if pos < 0:
                continue
            # Rows on edges inside a hanging face were already set by the
            # face (consistently); only set rows not covered by a face.
            fa, fb = _edge_faces(e)
            if hf[fa] >= 0 or hf[fb] >= 0:
                continue
            eidx = edge_node_indices(nq, e)
            R[eidx, :] = 0.0
            R[np.ix_(eidx, eidx)] = kids[pos]
    return R


def _edge_faces(e: int) -> Tuple[int, int]:
    sides = edge_transverse_sides(e)
    return tuple(2 * a + s for a, s in sorted(sides.items()))  # type: ignore


class CGSpace:
    """Continuous Galerkin function space over a forest mesh + LNodes."""

    def __init__(
        self,
        mesh: Mesh,
        ln: LNodes,
        comm: Comm,
        *,
        _deprecation_warning: bool = True,
    ) -> None:
        if _deprecation_warning:
            warnings.warn(
                "CGSpace() is deprecated; use "
                "repro.mangll.op.CGOperator(degree).bind(ctx) "
                "(compiled element kernels, same bit-exact results)",
                DeprecationWarning,
                stacklevel=2,
            )
        if ln.degree != mesh.degree:
            raise ValueError("LNodes/mesh degree mismatch")
        self.mesh = mesh
        self.ln = ln
        self.comm = comm
        self.dim = mesh.dim
        self.nq = mesh.degree + 1
        self.npts = self.nq**self.dim
        self._R_of: Dict[int, np.ndarray] = {}

    # --- Element constraint operators ----------------------------------------------

    def element_R(self, e: int) -> np.ndarray:
        hf = tuple(int(v) for v in self.ln.hanging_face[e])
        he = (
            tuple(int(v) for v in self.ln.hanging_edge[e])
            if self.ln.hanging_edge is not None
            else ()
        )
        return hanging_operator(self.dim, self.nq, hf, he)

    # --- Assembly -----------------------------------------------------------------

    def assemble_matrix(self, elem_mats: np.ndarray) -> sp.csr_matrix:
        """Assemble per-element dense matrices into the local sparse system."""
        nelem = self.mesh.nelem_local
        if elem_mats.shape != (nelem, self.npts, self.npts):
            raise ValueError("elem_mats has wrong shape")
        nloc = self.ln.num_local_nodes
        rows, cols, vals = [], [], []
        en = self.ln.element_nodes
        for e in range(nelem):
            R = self.element_R(e)
            Ae = R.T @ elem_mats[e] @ R
            ids = en[e]
            rows.append(np.repeat(ids, self.npts))
            cols.append(np.tile(ids, self.npts))
            vals.append(Ae.ravel())
        if not rows:
            return sp.csr_matrix((nloc, nloc))
        A = sp.coo_matrix(
            (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
            shape=(nloc, nloc),
        )
        return A.tocsr()

    def assemble_vector(self, elem_vecs: np.ndarray) -> np.ndarray:
        """Assemble per-element load vectors; returns a *partial* vector
        (shared rows incomplete until reverse-add scattered)."""
        nelem = self.mesh.nelem_local
        out = np.zeros(self.ln.num_local_nodes)
        for e in range(nelem):
            R = self.element_R(e)
            np.add.at(out, self.ln.element_nodes[e], R.T @ elem_vecs[e])
        return out

    def assemble_vector_summed(self, elem_vecs: np.ndarray) -> np.ndarray:
        """Assembled vector with shared contributions accumulated globally."""
        return self.ln.scatter_reverse_add(self.comm, self.assemble_vector(elem_vecs))

    # --- Element kernels ------------------------------------------------------------

    def elem_laplacian(self, coeff: Optional[np.ndarray] = None) -> np.ndarray:
        """Element stiffness: int coeff grad(phi_i) . grad(phi_j)."""
        m = self.mesh
        nl = m.nelem_local
        G = gradient_matrices(self.dim, self.nq)
        wdet = m.detj[:nl] * m.weights[None, :]
        if coeff is not None:
            wdet = wdet * coeff
        jinv = m.jinv[:nl]
        K = np.zeros((nl, self.npts, self.npts))
        for a in range(self.dim):
            for b in range(self.dim):
                gab = np.einsum("epc,epc->ep", jinv[:, :, a, :], jinv[:, :, b, :])
                K += np.einsum("qi,eq,qj->eij", G[a], wdet * gab, G[b])
        return K

    def elem_mass(self, coeff: Optional[np.ndarray] = None) -> np.ndarray:
        """Element (LGL-collocated, diagonal) mass matrices."""
        m = self.mesh
        nl = m.nelem_local
        wdet = m.detj[:nl] * m.weights[None, :]
        if coeff is not None:
            wdet = wdet * coeff
        M = np.zeros((nl, self.npts, self.npts))
        idx = np.arange(self.npts)
        M[:, idx, idx] = wdet
        return M

    def elem_load(self, f_nodal: np.ndarray) -> np.ndarray:
        """Element load vectors for a nodal forcing field."""
        m = self.mesh
        nl = m.nelem_local
        return m.detj[:nl] * m.weights[None, :] * f_nodal

    # --- Node geometry & BCs ----------------------------------------------------------

    def node_coords(self, geometry) -> np.ndarray:
        """Physical coordinates of each local node (via its canonical key)."""
        from repro.p4est.bits import dimension

        ln = self.ln
        NL = ln.degree * dimension(self.dim).root_len
        keys = ln.keys
        out = np.zeros((len(keys), self.mesh.coords.shape[2]))
        for tree in np.unique(keys[:, 0]):
            sel = np.flatnonzero(keys[:, 0] == tree)
            u = keys[sel, 1 : 1 + self.dim].astype(np.float64) / NL
            out[sel] = geometry.map_points(int(tree), u)[:, : out.shape[1]]
        return out

    def boundary_node_mask(self, conn) -> np.ndarray:
        """Nodes on the physical (unconnected) domain boundary."""
        from repro.p4est.bits import dimension

        ln = self.ln
        NL = ln.degree * dimension(self.dim).root_len
        keys = ln.keys
        mask = np.zeros(len(keys), dtype=bool)
        for a in range(self.dim):
            for side, val in ((0, 0), (1, NL)):
                on = keys[:, 1 + a] == val
                if not on.any():
                    continue
                face = 2 * a + side
                for tree in np.unique(keys[on, 0]):
                    if conn.is_boundary_face(int(tree), face):
                        mask |= on & (keys[:, 0] == tree)
        return mask

    # --- Distributed linear algebra ----------------------------------------------------

    def make_operator(self, A_local: sp.csr_matrix) -> Callable[[np.ndarray], np.ndarray]:
        """Distributed matvec: local product + reverse-add over shared nodes.

        Input vectors must be *consistent* (same value on every copy of a
        shared node); the output is consistent as well.
        """

        def mv(x: np.ndarray) -> np.ndarray:
            return self.ln.scatter_reverse_add(self.comm, A_local @ x)

        return mv

    def make_constrained_operator(
        self, A_local: sp.csr_matrix, fixed_mask: np.ndarray
    ) -> Callable[[np.ndarray], np.ndarray]:
        """Distributed matvec acting as the identity on constrained nodes.

        Use together with a matrix whose constrained rows/columns were
        zeroed (no identity diagonal): shared Dirichlet rows would
        otherwise accumulate one identity per touching rank in the
        reverse-add.
        """

        def mv(x: np.ndarray) -> np.ndarray:
            y = self.ln.scatter_reverse_add(self.comm, A_local @ x)
            y[fixed_mask] = x[fixed_mask]
            return y

        return mv

    def dot(self, a: np.ndarray, b: np.ndarray) -> float:
        owned = self.ln.is_owned()
        local = float(np.dot(a[owned], b[owned]))
        return float(self.comm.allreduce(local, SUM))

    def norm(self, a: np.ndarray) -> float:
        return float(np.sqrt(max(self.dot(a, a), 0.0)))


def apply_dirichlet(
    A: sp.csr_matrix,
    b: np.ndarray,
    mask: np.ndarray,
    values: np.ndarray,
) -> Tuple[sp.csr_matrix, np.ndarray]:
    """Symmetric elimination of Dirichlet rows/columns.

    Returns modified copies; constrained entries get identity rows and
    ``values`` on the right-hand side.
    """
    A = A.tolil(copy=True)
    b = b.copy()
    fixed = np.flatnonzero(mask)
    # Move known values to the RHS, then zero rows/cols.
    csr = A.tocsr()
    contrib = csr[:, fixed] @ values[fixed]
    b -= contrib
    A[fixed, :] = 0.0
    A[:, fixed] = 0.0
    for i in fixed:
        A[i, i] = 1.0
    b[fixed] = values[fixed]
    return A.tocsr(), b

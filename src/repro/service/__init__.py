"""Fault-isolated multi-tenant session layer over warm machine pools.

Public surface of the serving stack: :class:`ForestService` (the
session multiplexer), :class:`ServiceConfig` (its declarative shape),
the session lifecycle states, the per-tenant :class:`CircuitBreaker`,
and the typed service errors.  See ``docs/SERVICE.md``.
"""

from repro.service.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.service.errors import (
    DeadlineExceededError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadError,
    SessionCancelledError,
    SessionNotFoundError,
)
from repro.service.service import ForestService, ServiceConfig
from repro.service.session import (
    CANCELLED,
    DONE,
    EXPIRED,
    FAILED,
    QUEUED,
    RETRYING,
    RUNNING,
    TERMINAL_STATES,
    Session,
)

__all__ = [
    "ForestService",
    "ServiceConfig",
    "CircuitBreaker",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "ServiceError",
    "ServiceClosedError",
    "ServiceOverloadError",
    "SessionCancelledError",
    "SessionNotFoundError",
    "DeadlineExceededError",
    "Session",
    "QUEUED",
    "RUNNING",
    "RETRYING",
    "DONE",
    "FAILED",
    "EXPIRED",
    "CANCELLED",
    "TERMINAL_STATES",
]

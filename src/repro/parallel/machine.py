"""Thread-backed SPMD execution of rank programs.

:func:`spmd_run` launches one thread per rank, each executing the same
``fn(comm, *args)`` against its own :class:`ThreadComm`.  Collectives are
implemented with a shared two-phase barrier protocol: every rank deposits
its contribution, the barrier's leader combines, a second barrier releases
the results.  The protocol is deterministic (results never depend on
thread scheduling) and exception-safe: a raising rank aborts the barrier,
unblocking all peers, and the original exception is re-raised from
:func:`spmd_run`.

This machine is the stand-in for MPI on the paper's Cray XT5: algorithms
exercise real distributed storage and real communication structure, while
:class:`~repro.parallel.stats.CommStats` meters the traffic for the
performance model.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.parallel.comm import Comm
from repro.parallel.ops import SUM, ReduceOp, identity_for, payload_nbytes
from repro.parallel.sanitizer import SanitizedComm, SanitizerState
from repro.parallel.stats import CommStats
from repro.parallel.watchdog import HangError, HangWatchdog

MAX_RANKS = 1024


class SpmdError(RuntimeError):
    """Raised on all surviving ranks when a peer rank fails.

    ``failed_rank`` is the lowest rank whose own exception (not a
    cascaded abort) brought the run down, or ``None`` when unknown.
    """

    def __init__(self, message: str, failed_rank: Optional[int] = None) -> None:
        super().__init__(message)
        self.failed_rank = failed_rank


class _Shared:
    """State shared by the ranks of one SPMD run.

    ``timeout`` arms every barrier wait: a wait that expires breaks the
    protocol for all ranks and the failure is attributed (via the
    ``watchdog``'s heartbeat diagnosis when one is attached) instead of
    wedging the run.  ``None`` (the default) waits indefinitely, which is
    byte-identical to the pre-watchdog behavior.
    """

    def __init__(
        self,
        size: int,
        timeout: Optional[float] = None,
        watchdog: Optional[HangWatchdog] = None,
    ) -> None:
        self.size = size
        self.timeout = timeout
        self.watchdog = watchdog
        self.barrier = threading.Barrier(size)
        self.slots: List[Any] = [None] * size
        self.result: Any = None
        self._lock = threading.Lock()
        self.failures: Dict[int, BaseException] = {}

    def abort(self, rank: int, exc: BaseException) -> None:
        """Record a rank failure and break the barrier protocol.

        Primary failures (anything but a cascaded :class:`SpmdError`) are
        collected per rank; :attr:`failed_rank` reports the *lowest* such
        rank so concurrent aborts resolve deterministically regardless of
        thread scheduling.  Cascaded :class:`SpmdError` reactions from
        peers unblocked by a broken barrier never mask the true cause.
        """
        with self._lock:
            if not isinstance(exc, SpmdError) or not self.failures:
                self.failures.setdefault(rank, exc)
        self.barrier.abort()

    @property
    def failed_rank(self) -> Optional[int]:
        with self._lock:
            return min(self.failures) if self.failures else None

    @property
    def failure(self) -> Optional[BaseException]:
        with self._lock:
            return self.failures[min(self.failures)] if self.failures else None


class ThreadComm(Comm):
    """Communicator handle for one rank of a thread-backed SPMD run."""

    def __init__(self, rank: int, shared: _Shared) -> None:
        self.rank = rank
        self.size = shared.size
        self.stats = CommStats()
        self._shared = shared
        self.compute_seconds = 0.0
        self._mark = time.thread_time()

    # Internal machinery ---------------------------------------------------

    def _wait(self) -> int:
        """One barrier round, armed with the run's consistent timeout.

        Every blocking path of the machine funnels through this wait, so
        a single ``timeout`` bounds them all.  On a broken barrier with no
        rank failure on record the wait itself expired: the watchdog (if
        attached) diagnoses the heartbeat table, names the offending
        rank, and dumps the flight recorder before the failure is
        recorded, so the resulting :class:`SpmdError` carries an
        attributable ``failed_rank`` instead of a bare abort.
        """
        shared = self._shared
        try:
            return shared.barrier.wait(shared.timeout)
        except threading.BrokenBarrierError:
            if shared.failed_rank is None:
                # No failure recorded: the wait timed out (only possible
                # with a timeout armed).  Attribute the hang.
                if shared.watchdog is not None:
                    shared.watchdog.on_timeout(self.rank, shared)
                else:
                    shared.abort(
                        self.rank,
                        HangError(
                            f"collective timed out after {shared.timeout}s "
                            "(attach a HangWatchdog for a per-rank diagnosis)",
                        ),
                    )
            failed = shared.failed_rank
            exc = shared.failure
            if isinstance(exc, HangError):
                raise SpmdError(
                    f"SPMD hang (rank {failed}): {exc}", failed_rank=failed
                ) from exc
            raise SpmdError(
                f"SPMD run aborted (failure on rank {failed})", failed_rank=failed
            ) from None

    def _collect(self, contribution: Any, combine: Callable[[List[Any]], Any]) -> Any:
        """Two-phase collective: deposit, leader combines, all read.

        A ``combine`` failure on the wait's leader is recorded in the
        shared state *before* the barrier breaks, so peers (and the
        driver) see the true cause instead of a bare abort with no rank.
        """
        shared = self._shared
        shared.slots[self.rank] = contribution
        if self._wait() == 0:
            try:
                shared.result = combine(list(shared.slots))
            except BaseException as exc:  # noqa: BLE001 - must unblock peers
                shared.abort(self.rank, exc)
                raise SpmdError(
                    f"collective combine failed on rank {self.rank}: {exc!r}",
                    failed_rank=self.rank,
                ) from exc
        self._wait()
        result = shared.result
        return result

    def _begin(self) -> None:
        now = time.thread_time()
        self.compute_seconds += now - self._mark

    def _end(self) -> None:
        self._mark = time.thread_time()

    # Collectives ----------------------------------------------------------

    def barrier(self) -> None:
        self._begin()
        self.stats.record("barrier", 0, 0)
        self._wait()
        self._wait()
        self._end()

    def bcast(self, obj: Any, root: int = 0) -> Any:
        self._begin()
        self._check_root(root)
        sent = payload_nbytes(obj) if self.rank == root else 0
        self.stats.record("bcast", self.size - 1 if self.rank == root else 0, sent)
        result = self._collect(obj if self.rank == root else None, lambda slots: slots[root])
        self._end()
        return result

    def gather(self, obj: Any, root: int = 0) -> Optional[List[Any]]:
        self._begin()
        self._check_root(root)
        self.stats.record("gather", 0 if self.rank == root else 1, payload_nbytes(obj))
        result = self._collect(obj, list)
        self._end()
        return result if self.rank == root else None

    def scatter(self, objs: Optional[List[Any]], root: int = 0) -> Any:
        self._begin()
        self._check_root(root)
        if self.rank == root:
            if objs is None or len(objs) != self.size:
                raise ValueError("scatter requires a list of one value per rank at root")
            sent = sum(payload_nbytes(o) for i, o in enumerate(objs) if i != root)
            self.stats.record("scatter", self.size - 1, sent)
        else:
            self.stats.record("scatter", 0, 0)
        result = self._collect(objs if self.rank == root else None, lambda slots: slots[root])
        self._end()
        return result[self.rank]

    def allgather(self, obj: Any) -> List[Any]:
        self._begin()
        self.stats.record("allgather", self.size - 1, payload_nbytes(obj))
        result = self._collect(obj, list)
        self._end()
        return list(result)

    def allreduce(self, value: Any, op: ReduceOp = SUM) -> Any:
        self._begin()
        self.stats.record("allreduce", self.size - 1, payload_nbytes(value))

        def combine(slots: List[Any]) -> Any:
            acc = slots[0]
            for v in slots[1:]:
                acc = op(acc, v)
            return acc

        result = self._collect(value, combine)
        self._end()
        return result

    def exscan(self, value: Any, op: ReduceOp = SUM) -> Any:
        self._begin()
        self.stats.record("exscan", 1, payload_nbytes(value))

        def combine(slots: List[Any]) -> List[Any]:
            prefixes = [identity_for(op, slots[0])]
            acc = slots[0]
            for v in slots[1:]:
                prefixes.append(acc)
                acc = op(acc, v)
            return prefixes

        result = self._collect(value, combine)
        self._end()
        return result[self.rank]

    def scan(self, value: Any, op: ReduceOp = SUM) -> Any:
        self._begin()
        self.stats.record("scan", 1, payload_nbytes(value))

        def combine(slots: List[Any]) -> List[Any]:
            prefixes = []
            acc = None
            for i, v in enumerate(slots):
                acc = v if i == 0 else op(acc, v)
                prefixes.append(acc)
            return prefixes

        result = self._collect(value, combine)
        self._end()
        return result[self.rank]

    def alltoall(self, objs: List[Any]) -> List[Any]:
        self._begin()
        if len(objs) != self.size:
            raise ValueError("alltoall requires one value per destination rank")
        sent = sum(payload_nbytes(o) for i, o in enumerate(objs) if i != self.rank)
        self.stats.record("alltoall", self.size - 1, sent)
        result = self._collect(list(objs), lambda slots: slots)
        received = [result[src][self.rank] for src in range(self.size)]
        self._end()
        return received

    def exchange(self, outbox: Dict[int, Any]) -> Dict[int, Any]:
        self._begin()
        for dest in outbox:
            if not 0 <= dest < self.size:
                raise ValueError(f"exchange destination {dest} out of range")
        nmsg = sum(1 for d in outbox if d != self.rank)
        nbytes = sum(payload_nbytes(v) for d, v in outbox.items() if d != self.rank)
        self.stats.record("exchange", nmsg, nbytes)
        all_outboxes = self._collect(dict(outbox), lambda slots: slots)
        inbox = {
            src: all_outboxes[src][self.rank]
            for src in range(self.size)
            if self.rank in all_outboxes[src]
        }
        self._end()
        return inbox

    def _check_root(self, root: int) -> None:
        if not 0 <= root < self.size:
            raise ValueError(f"root {root} out of range for size-{self.size} comm")


@dataclass
class RankOutcome:
    """Result and metering for one rank of an SPMD run."""

    value: Any
    stats: CommStats
    compute_seconds: float
    trace: Any = None  # TraceReport when the run was traced


@dataclass
class SpmdReport:
    """Everything :func:`spmd_run_detailed` learned about a run."""

    outcomes: List[RankOutcome]
    wall_seconds: float

    @property
    def values(self) -> List[Any]:
        return [o.value for o in self.outcomes]

    @property
    def max_compute_seconds(self) -> float:
        return max(o.compute_seconds for o in self.outcomes)

    def merged_stats(self) -> CommStats:
        merged = CommStats()
        for o in self.outcomes:
            merged.merge(o.stats)
        return merged

    @property
    def trace_reports(self) -> List[Any]:
        """Per-rank :class:`~repro.trace.tracer.TraceReport`s (traced runs)."""
        return [o.trace for o in self.outcomes if o.trace is not None]

    def profile(self, wall_seconds: Optional[float] = None) -> Any:
        """Merge the per-rank traces into a :class:`~repro.trace.RunProfile`.

        Raises :class:`ValueError` when the run was not launched with
        ``trace=True``.
        """
        reports = self.trace_reports
        if not reports:
            raise ValueError("run was not traced; pass trace=True to spmd_run_*")
        from repro.trace.profile import RunProfile

        if wall_seconds is None:
            wall_seconds = self.wall_seconds
        return RunProfile.from_reports(reports, wall_seconds=wall_seconds)


class _Attempt:
    """One launch of ``size`` rank threads (shared by the run entrypoints)."""

    def __init__(
        self,
        size: int,
        fn: Callable[..., Any],
        args: tuple,
        kwargs: dict,
        comm_wrapper: Optional[Callable[[Comm], Comm]] = None,
        trace: bool = False,
        timeout: Optional[float] = None,
        watchdog: Optional[HangWatchdog] = None,
        sanitize: bool = False,
    ) -> None:
        if not 1 <= size <= MAX_RANKS:
            raise ValueError(f"size must be in [1, {MAX_RANKS}], got {size}")
        if timeout is None and watchdog is not None:
            timeout = watchdog.timeout
        self.shared = _Shared(size, timeout=timeout, watchdog=watchdog)
        self.comms = [ThreadComm(r, self.shared) for r in range(size)]
        self.outcomes: List[Optional[RankOutcome]] = [None] * size
        self.wall_seconds = 0.0
        self.artifact: Optional[str] = None
        if watchdog is not None:
            watchdog.attach(size)
        san_state = SanitizerState(size) if sanitize else None
        if trace:
            # Imported lazily: repro.trace depends on this module's package.
            from repro.trace.comm import TracingComm
            from repro.trace.tracer import Tracer

            epoch = time.perf_counter()  # shared t=0 across rank timelines

        def runner(rank: int) -> None:
            comm = self.comms[rank]
            comm._mark = time.thread_time()  # clock baseline in the rank thread
            # Decorator stack, innermost first: watchdog heartbeats bracket
            # the real blocking waits, the sanitizer sees post-fault
            # payloads (comm_wrapper composes faults on top), tracing is
            # outermost so injected faults are metered too.
            base: Comm = comm
            if watchdog is not None:
                base = watchdog.comm_for(base)
            if san_state is not None:
                base = SanitizedComm(base, san_state)
            facade = comm_wrapper(base) if comm_wrapper is not None else base
            tracer = None
            if trace:
                tracer = Tracer(rank, epoch=epoch)
                facade = TracingComm(facade, tracer)
            try:
                if tracer is not None:
                    with tracer.activate():
                        value = fn(facade, *args, **kwargs)
                else:
                    value = fn(facade, *args, **kwargs)
            except BaseException as exc:  # noqa: BLE001 - must unblock peers
                if watchdog is not None:
                    watchdog.finished(rank, errored=True)
                self.shared.abort(rank, exc)
                return
            if watchdog is not None:
                watchdog.finished(rank)
            comm._begin()  # flush trailing compute time
            self.outcomes[rank] = RankOutcome(
                value,
                comm.stats,
                comm.compute_seconds,
                trace=tracer.report() if tracer is not None else None,
            )

        t0 = time.perf_counter()
        threads = [
            threading.Thread(
                target=runner, args=(r,), name=f"spmd-rank-{r}", daemon=True
            )
            for r in range(size)
        ]
        for t in threads:
            t.start()
        self._join(threads)
        self.wall_seconds = time.perf_counter() - t0
        if self.failed and watchdog is not None:
            # Flight-recorder dump for *any* failure (mismatch, injected
            # fault, program error); the hang path has already dumped.
            self.artifact = watchdog.dump_for_failure("spmd-error")

    def _join(self, threads: List[threading.Thread]) -> None:
        """Join the rank threads; never wedge when a timeout is armed.

        Without a timeout this is a plain join (unchanged semantics).
        With one, a thread that stays alive past a grace period *after
        the run has failed* is wedged outside the barrier protocol (e.g.
        an infinite compute loop); it is recorded as a hang on its rank
        and abandoned as a daemon so the driver regains control.
        """
        timeout = self.shared.timeout
        if timeout is None:
            for t in threads:
                t.join()
            return
        grace = timeout + 1.0
        alive = list(enumerate(threads))
        failed_at: Optional[float] = None
        while alive:
            for _, t in alive:
                t.join(0.05)
            alive = [(r, t) for r, t in alive if t.is_alive()]
            if not alive:
                return
            if self.shared.failed_rank is None:
                continue  # still running normally; keep waiting
            now = time.perf_counter()
            if failed_at is None:
                failed_at = now
            elif now - failed_at > grace:
                for r, _ in alive:
                    self.shared.abort(
                        r,
                        HangError(
                            f"rank {r} thread still running {grace:.1f}s after "
                            "the run aborted (wedged outside comm); abandoned",
                            rank=r,
                        ),
                    )
                return

    @property
    def failed(self) -> bool:
        return self.shared.failed_rank is not None

    def lost_stats(self) -> CommStats:
        """Traffic performed by every rank of a failed attempt (lost work)."""
        merged = CommStats()
        for comm in self.comms:
            merged.merge(comm.stats)
        return merged

    def raise_failure(self) -> None:
        """Re-raise the recorded failure, naming the first failed rank.

        When a flight recorder was dumped for this attempt, its artifact
        path is chained into the message so a post-mortem never starts
        from a bare traceback.
        """
        rank = self.shared.failed_rank
        exc = self.shared.failure
        assert exc is not None
        if isinstance(exc, SpmdError):
            raise exc
        message = f"SPMD run failed on rank {rank}: {exc!r}"
        if self.artifact is not None and self.artifact not in message:
            message += f" [flight recorder: {self.artifact}]"
        raise SpmdError(message, failed_rank=rank) from exc

    def report(self) -> SpmdReport:
        assert all(o is not None for o in self.outcomes)
        return SpmdReport(
            [o for o in self.outcomes if o is not None], self.wall_seconds
        )


def spmd_run_detailed(
    size: int,
    fn: Callable[..., Any],
    *args: Any,
    trace: bool = False,
    timeout: Optional[float] = None,
    watchdog: Optional[HangWatchdog] = None,
    sanitize: bool = False,
    **kwargs: Any,
) -> SpmdReport:
    """Run ``fn(comm, *args, **kwargs)`` SPMD on ``size`` ranks with metering.

    With ``trace=True`` every rank runs under an active
    :class:`~repro.trace.tracer.Tracer` (sharing one epoch, so Chrome-trace
    timelines align) behind a :class:`~repro.trace.comm.TracingComm`; the
    per-rank :class:`~repro.trace.tracer.TraceReport`s land on the outcomes
    and :meth:`SpmdReport.profile` merges them.

    ``timeout`` bounds every blocking collective wait (default: wait
    forever, exactly the pre-watchdog behavior).  ``watchdog`` attaches a
    :class:`~repro.parallel.watchdog.HangWatchdog` — heartbeats, hang
    diagnosis, and a per-rank flight recorder dumped to a JSON artifact
    on any failure; it supplies its own timeout when ``timeout`` is not
    given.  ``sanitize=True`` cross-validates every collective call
    signature across ranks and raises
    :class:`~repro.parallel.sanitizer.CollectiveMismatchError` on
    divergence instead of deadlocking or corrupting.  All three are off
    by default and then cost nothing on the comm path.
    """
    attempt = _Attempt(
        size,
        fn,
        args,
        kwargs,
        trace=trace,
        timeout=timeout,
        watchdog=watchdog,
        sanitize=sanitize,
    )
    if attempt.failed:
        attempt.raise_failure()
    return attempt.report()


def spmd_run(
    size: int,
    fn: Callable[..., Any],
    *args: Any,
    trace: bool = False,
    timeout: Optional[float] = None,
    watchdog: Optional[HangWatchdog] = None,
    sanitize: bool = False,
    **kwargs: Any,
) -> List[Any]:
    """Run ``fn(comm, *args, **kwargs)`` SPMD on ``size`` ranks.

    Returns the list of per-rank return values.  If any rank raises, a
    :class:`SpmdError` naming the first failed rank propagates with the
    original exception chained (peers are unblocked via barrier abort).
    ``trace=True`` enables phase tracing (use :func:`spmd_run_detailed` to
    also get the reports back); ``timeout``/``watchdog``/``sanitize``
    enable the correctness layer (see :func:`spmd_run_detailed`).
    """
    return spmd_run_detailed(
        size,
        fn,
        *args,
        trace=trace,
        timeout=timeout,
        watchdog=watchdog,
        sanitize=sanitize,
        **kwargs,
    ).values


# Self-healing runs ----------------------------------------------------------


class CheckpointStore:
    """In-memory checkpoint slot surviving across restart attempts.

    Rank programs call :meth:`save` (typically only the gather root passes
    a non-``None`` payload) and :meth:`load` to resume.  The store lives in
    the driver, outside the rank threads, so it survives a failed attempt.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._payload: Any = None
        self.saves = 0

    def save(self, payload: Any) -> None:
        """Record ``payload`` as the latest checkpoint (``None`` is a no-op)."""
        if payload is None:
            return
        with self._lock:
            self._payload = payload
            self.saves += 1

    def load(self) -> Any:
        """Latest checkpoint payload, or ``None`` if nothing was saved."""
        with self._lock:
            return self._payload

    @property
    def octants(self) -> int:
        """Global octant count of the stored checkpoint (0 if not a forest)."""
        with self._lock:
            return int(getattr(self._payload, "global_octants", 0) or 0)


@dataclass
class RecoveryReport:
    """Structured accounting of a :func:`spmd_run_resilient` run."""

    attempts: int = 1  # total launches, including the successful one
    recoveries: int = 0  # failed launches that were retried
    ranks_lost: List[int] = field(default_factory=list)
    initial_size: int = 0
    final_size: int = 0
    checkpoints_used: int = 0  # retries that restored from a checkpoint
    octants_repartitioned: int = 0  # octants redistributed by restores
    wall_seconds_lost: float = 0.0  # wall time of the failed attempts
    lost_stats: CommStats = field(default_factory=CommStats)
    artifacts: List[str] = field(default_factory=list)  # flight-recorder dumps

    def summary(self) -> str:
        ranks = ",".join(str(r) for r in self.ranks_lost) or "-"
        return (
            f"attempts {self.attempts} (recoveries {self.recoveries}), "
            f"ranks lost [{ranks}], size {self.initial_size}->{self.final_size}, "
            f"checkpoints used {self.checkpoints_used}, "
            f"octants repartitioned {self.octants_repartitioned}, "
            f"wall lost {self.wall_seconds_lost:.3f}s, "
            f"lost messages {self.lost_stats.total_messages}, "
            f"lost bytes {self.lost_stats.total_bytes}"
        )


@dataclass
class ResilientResult:
    """Return value of :func:`spmd_run_resilient`."""

    values: List[Any]
    report: SpmdReport
    recovery: RecoveryReport


def spmd_run_resilient(
    size: int,
    fn: Callable[..., Any],
    *args: Any,
    max_retries: int = 3,
    shrink_on_failure: bool = False,
    min_size: int = 1,
    store: Optional[CheckpointStore] = None,
    comm_wrapper: Optional[Callable[[Comm, int], Comm]] = None,
    trace: bool = False,
    timeout: Optional[float] = None,
    watchdog: Optional[HangWatchdog] = None,
    sanitize: bool = False,
    **kwargs: Any,
) -> ResilientResult:
    """Run ``fn(comm, store, *args, **kwargs)`` SPMD with checkpoint recovery.

    ``fn`` receives the :class:`CheckpointStore` after the communicator; it
    should resume from ``store.load()`` when that is not ``None`` and
    periodically ``store.save`` a restart payload (e.g. a
    :class:`repro.p4est.checkpoint.ForestCheckpoint`).  On :class:`SpmdError`
    the failed rank is recorded and the program is relaunched from the last
    checkpoint, up to ``max_retries`` times; with ``shrink_on_failure`` each
    retry drops the failed rank from the communicator (never below
    ``min_size``) — possible because checkpoints are partition-independent.

    ``comm_wrapper(comm, attempt)``, if given, decorates every rank's
    communicator per attempt — the hook used to compose
    :class:`repro.parallel.faults.FaultyComm` fault plans over specific
    attempts.  Exceptions other than rank failures (e.g. ``ValueError``
    raised consistently by the program itself on every attempt) still
    propagate after the retry budget is exhausted.

    Returns a :class:`ResilientResult`; its :class:`RecoveryReport` is the
    input for charging recovery overhead in :mod:`repro.perf`.  With
    ``trace=True`` the successful attempt's per-rank phase traces land on
    the returned report (see :func:`spmd_run_detailed`); tracing composes
    outside ``comm_wrapper``, so injected faults are metered too.

    ``timeout``/``watchdog``/``sanitize`` arm the correctness layer per
    attempt (see :func:`spmd_run_detailed`): a watchdog-detected hang or
    a sanitizer-detected collective mismatch surfaces as an attributable
    failure (``SpmdError.failed_rank``) and therefore rides the same
    checkpoint/shrink/retry path as a crash, instead of wedging the run.
    Flight-recorder artifacts of failed attempts are collected on
    ``RecoveryReport.artifacts``.
    """
    if store is None:
        store = CheckpointStore()
    recovery = RecoveryReport(initial_size=size, final_size=size)
    cur_size = size
    attempt_idx = 0
    while True:
        wrap = (
            (lambda comm, a=attempt_idx: comm_wrapper(comm, a))
            if comm_wrapper is not None
            else None
        )
        attempt = _Attempt(
            cur_size,
            fn,
            (store,) + args,
            kwargs,
            comm_wrapper=wrap,
            trace=trace,
            timeout=timeout,
            watchdog=watchdog,
            sanitize=sanitize,
        )
        if not attempt.failed:
            recovery.final_size = cur_size
            report = attempt.report()
            return ResilientResult(report.values, report, recovery)

        recovery.recoveries += 1
        recovery.wall_seconds_lost += attempt.wall_seconds
        recovery.lost_stats.merge(attempt.lost_stats())
        if attempt.artifact is not None:
            recovery.artifacts.append(attempt.artifact)
        failed = attempt.shared.failed_rank
        if failed is not None:
            recovery.ranks_lost.append(failed)
        if attempt_idx >= max_retries:
            recovery.attempts = attempt_idx + 1
            attempt.raise_failure()
        if store.load() is not None:
            recovery.checkpoints_used += 1
            recovery.octants_repartitioned += store.octants
        if shrink_on_failure and cur_size > min_size:
            cur_size -= 1
        attempt_idx += 1
        recovery.attempts = attempt_idx + 1

"""repro: a Python reproduction of "Extreme-Scale AMR" (SC10).

Forest-of-octrees parallel AMR (the p4est algorithm suite), high-order
cG/dG discretization on adaptive forests (the mangll layer), the paper's
three applications (advection, Rhea mantle convection, dGea seismic
waves), and the substrates they depend on — an in-process SPMD machine,
Krylov/AMG solvers, and performance models of the paper's computers.

Start at :mod:`repro.p4est` for the AMR core, or run
``examples/quickstart.py``.  DESIGN.md documents the system inventory and
the substitutions for hardware we do not have; EXPERIMENTS.md records the
paper-vs-reproduced results for every table and figure.
"""

__version__ = "1.0.0"

__all__ = [
    "parallel",
    "p4est",
    "mangll",
    "solvers",
    "amr",
    "apps",
    "perf",
    "io",
]

"""dGea: seismic wave propagation with dG on wavelength-adapted meshes
(§IV-B).

Velocity-strain first-order elastic (and acoustic, for fluid regions)
formulation, upwind interface fluxes with side-local impedances, a
PREM-style radial earth model, static mesh adaptation to the local
minimum seismic wavelength ("at least 10 points per wavelength"), a
Ricker point source, and optional dynamic wavefront-tracking AMR.

Substitution note: the global simulations run on the solid-mantle
spherical shell (core-mantle boundary to surface) with traction-free
boundaries at both spheres — the fluid outer core is excluded rather
than coupled, which preserves the meshing/scaling behaviour the paper's
Fig. 8-10 measure while avoiding a solid-sphere macro-mesh.
"""

from repro.apps.dgea.prem import PREM, prem_model
from repro.apps.dgea.elastic import ElasticModel
from repro.apps.dgea.driver import SeismicConfig, SeismicRun

__all__ = ["PREM", "prem_model", "ElasticModel", "SeismicConfig", "SeismicRun"]

"""Forest macro-topology: trees glued through faces, edges, and corners.

A :class:`Connectivity` describes the static, globally replicated macro-mesh
of the forest (paper §II-B/§II-D): ``K`` logical cubes, each with its own
right-handed coordinate system, connected conformally through macro-faces,
macro-edges, and macro-corners with arbitrary relative rotations.  Any
number of trees may share an edge or corner.

Adjacency is *derived* from a shared-vertex description (``tree_to_vertex``
over a vertex id list), the same way ``p4est_connectivity_new_*`` builders
work, and the inter-tree coordinate transforms are computed from corner
correspondences as integer signed-permutation affine maps.  No floating
point enters any topological decision (paper: "connectivity and
neighborhood relations are computed discretely").

Transforms come in three kinds:

* :class:`CellTransform` — a global rigid map between two trees' lattices,
  attached to each face link.  It maps interior *and* exterior octants
  (paper Fig. 3) and lattice points.
* Edge links map the along-edge coordinate and pin the transverse
  coordinates inward of the neighbor's edge.
* Corner links pin all coordinates at the neighbor's corner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.p4est.bits import dimension
from repro.p4est.octant import Octants

# Corner/face/edge conventions (z-order, p4est-compatible) --------------------
#
# Corner i has coordinate bits: x = i & 1, y = (i >> 1) & 1, z = (i >> 2) & 1.
# Face f: axis f // 2, side f % 2 (side 0 at coordinate 0, side 1 at L).
# Face corners are listed in "face z-order": position bits follow the two
# tangential axes in ascending axis order.

FACE_CORNERS = {
    2: {
        0: (0, 2),
        1: (1, 3),
        2: (0, 1),
        3: (2, 3),
    },
    3: {
        0: (0, 2, 4, 6),
        1: (1, 3, 5, 7),
        2: (0, 1, 4, 5),
        3: (2, 3, 6, 7),
        4: (0, 1, 2, 3),
        5: (4, 5, 6, 7),
    },
}

# 3D edges: 0-3 along x, 4-7 along y, 8-11 along z (p8est numbering).
EDGE_CORNERS = {
    0: (0, 1),
    1: (2, 3),
    2: (4, 5),
    3: (6, 7),
    4: (0, 2),
    5: (1, 3),
    6: (4, 6),
    7: (5, 7),
    8: (0, 4),
    9: (1, 5),
    10: (2, 6),
    11: (3, 7),
}


def face_axis_side(face: int) -> Tuple[int, int]:
    """(normal axis, side) of a face; side 0 at coordinate 0, 1 at L."""
    return face // 2, face % 2


def face_tangential_axes(dim: int, face: int) -> Tuple[int, ...]:
    axis = face // 2
    return tuple(a for a in range(dim) if a != axis)


def edge_axis(edge: int) -> int:
    """The axis a 3D edge runs along."""
    return edge // 4


def edge_transverse_sides(edge: int) -> Dict[int, int]:
    """Map of transverse axis -> side bit (0 or 1) for a 3D edge."""
    c0, c1 = EDGE_CORNERS[edge]
    axis = edge_axis(edge)
    sides = {}
    for a in range(3):
        if a == axis:
            continue
        bit0 = (c0 >> a) & 1
        bit1 = (c1 >> a) & 1
        assert bit0 == bit1
        sides[a] = bit0
    return sides


def corner_coords(dim: int, corner: int, length: int) -> Tuple[int, ...]:
    return tuple(((corner >> a) & 1) * length for a in range(dim))


# Transforms -------------------------------------------------------------------


@dataclass(frozen=True)
class CellTransform:
    """Rigid integer map from one tree's lattice to another's.

    For target axis ``j``: ``x'_j = sign[j] * x[perm[j]] + offset[j]``, and
    for *cells* of side ``h`` a flipped axis additionally subtracts ``h``
    so that the half-open interval ``[x, x+h)`` maps onto ``[x', x'+h)``.
    """

    dim: int
    perm: Tuple[int, ...]
    sign: Tuple[int, ...]
    offset: Tuple[int, ...]

    @classmethod
    def identity(cls, dim: int) -> "CellTransform":
        return cls(dim, tuple(range(dim)), (1,) * dim, (0,) * dim)

    def apply_points(
        self, coords: Sequence[np.ndarray], scale: int = 1
    ) -> List[np.ndarray]:
        """Map lattice points (no cell-size correction).

        ``scale`` stretches the lattice uniformly (offsets included); the
        degree-N node numbering uses ``scale=N`` so node positions stay
        integral.
        """
        out = []
        for j in range(self.dim):
            src = np.asarray(coords[self.perm[j]])
            if src.dtype.kind not in "fc":
                src = src.astype(np.int64)
            out.append(self.sign[j] * src + scale * self.offset[j])
        return out

    def apply_octants(self, octs: Octants, target_tree: int) -> Octants:
        """Map whole octants (lower-left corners with cell correction)."""
        h = octs.lens()
        coords = [octs.x, octs.y, octs.z]
        out = []
        for j in range(self.dim):
            src = coords[self.perm[j]]
            val = self.sign[j] * src + self.offset[j]
            if self.sign[j] < 0:
                val = val - h
            out.append(val)
        while len(out) < 3:
            out.append(np.zeros(len(octs), dtype=np.int64))
        tree = np.full(len(octs), target_tree, dtype=np.int32)
        return Octants(octs.dim, tree, out[0], out[1], out[2], octs.level.copy())

    def inverse(self) -> "CellTransform":
        perm = [0] * self.dim
        sign = [0] * self.dim
        offset = [0] * self.dim
        for j in range(self.dim):
            i = self.perm[j]
            perm[i] = j
            sign[i] = self.sign[j]
            offset[i] = self.sign[j] * (-self.offset[j]) if self.sign[j] > 0 else self.offset[j]
            # For sign=-1: x' = -x + off  =>  x = -x' + off (same form).
            if self.sign[j] < 0:
                offset[i] = self.offset[j]
        return CellTransform(self.dim, tuple(perm), tuple(sign), tuple(offset))

    def compose(self, inner: "CellTransform") -> "CellTransform":
        """Return the transform equal to applying ``inner`` then ``self``."""
        perm = [0] * self.dim
        sign = [0] * self.dim
        offset = [0] * self.dim
        for j in range(self.dim):
            k = self.perm[j]
            perm[j] = inner.perm[k]
            sign[j] = self.sign[j] * inner.sign[k]
            offset[j] = self.sign[j] * inner.offset[k] + self.offset[j]
        return CellTransform(self.dim, tuple(perm), tuple(sign), tuple(offset))

    def is_identity(self) -> bool:
        return (
            self.perm == tuple(range(self.dim))
            and all(s == 1 for s in self.sign)
            and all(o == 0 for o in self.offset)
        )


@dataclass(frozen=True)
class FaceLink:
    """Connection of one tree face to a neighbor tree face."""

    tree: int
    face: int
    nb_tree: int
    nb_face: int
    corner_map: Tuple[int, ...]  # my face-corner position -> neighbor position
    transform: CellTransform  # my tree lattice -> neighbor tree lattice


@dataclass(frozen=True)
class EdgeLink:
    """Connection of one 3D tree edge to an edge of another (or same) tree."""

    tree: int
    edge: int
    nb_tree: int
    nb_edge: int
    flipped: bool  # along-edge direction reversed

    def seed_octants(self, octs: Octants, maxlevel_len: int) -> Octants:
        """Map octants at my edge to same-size octants touching the
        neighbor edge from inside the neighbor tree.

        Only the along-edge coordinate of the input is used; transverse
        coordinates are pinned inward of the neighbor's edge.  This is the
        correct image region for balance/ghost constraints that propagate
        through a macro-edge.
        """
        L = maxlevel_len
        a = edge_axis(self.edge)
        a2 = edge_axis(self.nb_edge)
        coords = [octs.x, octs.y, octs.z]
        h = octs.lens()
        along = coords[a]
        along2 = (L - along - h) if self.flipped else along
        out = [None, None, None]
        out[a2] = along2
        for ax, side in edge_transverse_sides(self.nb_edge).items():
            out[ax] = np.full(len(octs), 0, dtype=np.int64) if side == 0 else (L - h)
        tree = np.full(len(octs), self.nb_tree, dtype=np.int32)
        return Octants(3, tree, out[0], out[1], out[2], octs.level.copy())

    def map_point(self, along: int, maxlevel_len: int) -> Tuple[int, int, int]:
        """Map a lattice point on my edge (by its along-coordinate) to the
        neighbor tree's coordinates of the same physical point."""
        L = maxlevel_len
        a2 = edge_axis(self.nb_edge)
        out = [0, 0, 0]
        out[a2] = (L - along) if self.flipped else along
        for ax, side in edge_transverse_sides(self.nb_edge).items():
            out[ax] = 0 if side == 0 else L
        return tuple(out)


@dataclass(frozen=True)
class CornerLink:
    """Connection of one tree corner to a corner of another (or same) tree."""

    tree: int
    corner: int
    nb_tree: int
    nb_corner: int

    def seed_octants(self, octs: Octants, maxlevel_len: int) -> Octants:
        """Same-size octants pinned inward at the neighbor corner."""
        L = maxlevel_len
        dim = octs.dim
        h = octs.lens()
        zero = np.zeros(len(octs), dtype=np.int64)
        out = []
        for a in range(3):
            if a >= dim:
                out.append(zero)
            elif (self.nb_corner >> a) & 1:
                out.append(L - h)
            else:
                out.append(zero)
        tree = np.full(len(octs), self.nb_tree, dtype=np.int32)
        return Octants(dim, tree, out[0], out[1], out[2], octs.level.copy())

    def map_point(self, dim: int, maxlevel_len: int) -> Tuple[int, ...]:
        return corner_coords(dim, self.nb_corner, maxlevel_len)


# The connectivity --------------------------------------------------------------


class Connectivity:
    """The static macro-structure of a forest (shared by all ranks).

    Parameters
    ----------
    dim:
        2 for quadtree forests, 3 for octree forests.
    vertices:
        ``(V, 3)`` float array of vertex positions.  Used only for geometry
        maps and visualization, never for topology.
    tree_to_vertex:
        ``(K, 2**dim)`` integer array: vertex id of each tree corner in
        z-order.  Trees sharing vertex ids are glued.
    extra_face_links:
        Optional explicit gluings ``(tree, face, nb_tree, nb_face,
        corner_map)`` for identifications that cannot be expressed by
        shared vertex ids (e.g. fully periodic single-tree domains).
    """

    def __init__(
        self,
        dim: int,
        vertices: np.ndarray,
        tree_to_vertex: np.ndarray,
        extra_face_links: Optional[
            Iterable[Tuple[int, int, int, int, Tuple[int, ...]]]
        ] = None,
        derive_faces: bool = True,
    ) -> None:
        self.dim = dim
        self.D = dimension(dim)
        self.vertices = np.asarray(vertices, dtype=np.float64).reshape(-1, 3)
        self.tree_to_vertex = np.asarray(tree_to_vertex, dtype=np.int64)
        if self.tree_to_vertex.ndim != 2 or self.tree_to_vertex.shape[1] != self.D.num_corners:
            raise ValueError("tree_to_vertex must be (K, 2**dim)")
        if len(self.tree_to_vertex) == 0:
            raise ValueError("connectivity needs at least one tree")
        if self.tree_to_vertex.min() < 0 or self.tree_to_vertex.max() >= len(self.vertices):
            raise ValueError("tree_to_vertex references unknown vertices")

        self.face_links: Dict[Tuple[int, int], FaceLink] = {}
        self.edge_links: Dict[Tuple[int, int], List[EdgeLink]] = {}
        self.corner_links: Dict[Tuple[int, int], List[CornerLink]] = {}
        self._build_face_links(extra_face_links or (), derive_faces)
        if dim == 3:
            self._build_edge_links()
        self._build_corner_links()

    # Properties ----------------------------------------------------------------

    @property
    def num_trees(self) -> int:
        return len(self.tree_to_vertex)

    def tree_corner_vertex(self, tree: int, corner: int) -> int:
        return int(self.tree_to_vertex[tree, corner])

    def is_boundary_face(self, tree: int, face: int) -> bool:
        return (tree, face) not in self.face_links

    # Face link construction -----------------------------------------------------

    def _face_corner_vertices(self, tree: int, face: int) -> Tuple[int, ...]:
        return tuple(
            int(self.tree_to_vertex[tree, c]) for c in FACE_CORNERS[self.dim][face]
        )

    def _build_face_links(
        self,
        extra: Iterable[Tuple[int, int, int, int, Tuple[int, ...]]],
        derive_faces: bool = True,
    ) -> None:
        groups: Dict[FrozenSet[int], List[Tuple[int, int]]] = {}
        if derive_faces:
            for k in range(self.num_trees):
                for f in range(self.D.num_faces):
                    vids = self._face_corner_vertices(k, f)
                    if len(set(vids)) != len(vids):
                        # Degenerate face (repeated vertex): cannot derive a
                        # gluing from vertices; leave it to extra_face_links.
                        continue
                    groups.setdefault(frozenset(vids), []).append((k, f))

        pairs: List[Tuple[int, int, int, int, Tuple[int, ...]]] = []
        for vset, members in groups.items():
            if len(members) == 1:
                continue
            if len(members) > 2:
                raise ValueError(
                    f"face shared by more than two trees: {members} "
                    "(nonconforming, or a vertex-ambiguous periodic gluing; "
                    "pass explicit face links with derive_faces=False)"
                )
            (k, f), (k2, f2) = members
            my = self._face_corner_vertices(k, f)
            nb = self._face_corner_vertices(k2, f2)
            corner_map = tuple(nb.index(v) for v in my)
            pairs.append((k, f, k2, f2, corner_map))
        for k, f, k2, f2, corner_map in extra:
            pairs.append((k, f, k2, f2, tuple(corner_map)))

        for k, f, k2, f2, corner_map in pairs:
            self._add_face_pair(k, f, k2, f2, corner_map)

    def _add_face_pair(
        self, k: int, f: int, k2: int, f2: int, corner_map: Tuple[int, ...]
    ) -> None:
        fwd = self._face_transform(f, f2, corner_map)
        inv_map = tuple(corner_map.index(i) for i in range(len(corner_map)))
        bwd = self._face_transform(f2, f, inv_map)
        if (k, f) in self.face_links or (k2, f2) in self.face_links:
            raise ValueError(f"face ({k},{f}) or ({k2},{f2}) glued twice")
        self.face_links[(k, f)] = FaceLink(k, f, k2, f2, corner_map, fwd)
        self.face_links[(k2, f2)] = FaceLink(k2, f2, k, f, inv_map, bwd)

    def _face_transform(
        self, f: int, f2: int, corner_map: Tuple[int, ...]
    ) -> CellTransform:
        """Build the rigid map (my tree lattice -> neighbor lattice) for a
        face gluing with the given face-corner correspondence."""
        dim = self.dim
        L = self.D.root_len
        a, s = face_axis_side(f)
        a2, s2 = face_axis_side(f2)
        tang = face_tangential_axes(dim, f)
        tang2 = face_tangential_axes(dim, f2)

        perm = [0] * dim
        sign = [0] * dim
        offset = [0] * dim

        # Normal axis: outward depth t on my side becomes inward depth on
        # the neighbor side (see module docstring for the four cases).
        perm[a2] = a
        if s == 1 and s2 == 0:
            sign[a2], offset[a2] = 1, -L
        elif s == 1 and s2 == 1:
            sign[a2], offset[a2] = -1, 2 * L
        elif s == 0 and s2 == 0:
            sign[a2], offset[a2] = -1, 0
        else:  # s == 0, s2 == 1
            sign[a2], offset[a2] = 1, L

        # Tangential axes from the corner correspondence.
        j0 = corner_map[0]
        for kloc, my_axis in enumerate(tang):
            jd = corner_map[1 << kloc] ^ j0
            if jd not in (1, 2):
                raise ValueError(
                    f"face corner correspondence {corner_map} is not rigid"
                )
            kloc2 = 0 if jd == 1 else 1
            if dim == 2:
                kloc2 = 0  # only one tangential axis in 2D
            nb_axis = tang2[kloc2]
            flip = ((j0 >> kloc2) & 1) == 1
            perm[nb_axis] = my_axis
            sign[nb_axis] = -1 if flip else 1
            offset[nb_axis] = L if flip else 0

        return CellTransform(dim, tuple(perm), tuple(sign), tuple(offset))

    # Edge link construction -------------------------------------------------------

    def _build_edge_links(self) -> None:
        groups: Dict[FrozenSet[int], List[Tuple[int, int]]] = {}
        for k in range(self.num_trees):
            for e in range(12):
                c0, c1 = EDGE_CORNERS[e]
                v0 = int(self.tree_to_vertex[k, c0])
                v1 = int(self.tree_to_vertex[k, c1])
                if v0 == v1:
                    continue  # degenerate edge
                groups.setdefault(frozenset((v0, v1)), []).append((k, e))
        for vset, members in groups.items():
            if len(members) < 2:
                continue
            for k, e in members:
                c0, _ = EDGE_CORNERS[e]
                v0 = int(self.tree_to_vertex[k, c0])
                links = []
                for k2, e2 in members:
                    if (k2, e2) == (k, e):
                        continue
                    c0b, c1b = EDGE_CORNERS[e2]
                    v0b = int(self.tree_to_vertex[k2, c0b])
                    flipped = v0b != v0
                    links.append(EdgeLink(k, e, k2, e2, flipped))
                if links:
                    self.edge_links.setdefault((k, e), []).extend(links)

    # Corner link construction -------------------------------------------------------

    def _build_corner_links(self) -> None:
        groups: Dict[int, List[Tuple[int, int]]] = {}
        for k in range(self.num_trees):
            for c in range(self.D.num_corners):
                v = int(self.tree_to_vertex[k, c])
                groups.setdefault(v, []).append((k, c))
        for v, members in groups.items():
            if len(members) < 2:
                continue
            for k, c in members:
                links = [
                    CornerLink(k, c, k2, c2)
                    for (k2, c2) in members
                    if (k2, c2) != (k, c)
                ]
                if links:
                    self.corner_links.setdefault((k, c), []).extend(links)

    # Validation -----------------------------------------------------------------

    def validate(self) -> None:
        """Check internal consistency: mutual face links with inverse
        transforms that round-trip octants exactly."""
        L = self.D.root_len
        for (k, f), link in self.face_links.items():
            partner = self.face_links.get((link.nb_tree, link.nb_face))
            if partner is None:
                raise AssertionError(f"face link ({k},{f}) has no partner")
            if (partner.nb_tree, partner.nb_face) != (k, f):
                raise AssertionError(f"face link ({k},{f}) partner mismatch")
            comp = partner.transform.compose(link.transform)
            if not comp.is_identity():
                raise AssertionError(
                    f"face transforms of ({k},{f})<->({link.nb_tree},{link.nb_face}) "
                    "do not invert each other"
                )
            # Corner positions must map consistently: each face corner of f
            # transforms to the matched corner of the partner face.
            for i, ci in enumerate(FACE_CORNERS[self.dim][f]):
                pt = corner_coords(self.dim, ci, L)
                arrs = [np.array([p], dtype=np.int64) for p in pt]
                while len(arrs) < self.dim:
                    arrs.append(np.zeros(1, dtype=np.int64))
                img = link.transform.apply_points(arrs[: self.dim])
                cj = FACE_CORNERS[self.dim][link.nb_face][link.corner_map[i]]
                expect = corner_coords(self.dim, cj, L)
                got = tuple(int(a[0]) for a in img)
                if got != expect:
                    raise AssertionError(
                        f"face link ({k},{f}) corner {i}: {got} != {expect}"
                    )

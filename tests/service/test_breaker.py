"""Unit tests of the per-tenant circuit breaker (fake clock throughout)."""

import pytest

from repro.service.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make(threshold=3, cooldown=10.0):
    clock = FakeClock()
    return CircuitBreaker(threshold=threshold, cooldown=cooldown, clock=clock), clock


def test_starts_closed_at_full_share():
    breaker, _ = make()
    assert breaker.state == CLOSED
    assert breaker.rank_share(8, 1) == 8
    assert breaker.degraded_runs == 0


def test_trips_after_threshold_consecutive_failures():
    breaker, _ = make(threshold=3)
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == CLOSED
    breaker.record_failure()
    assert breaker.state == OPEN
    assert breaker.trips == 1


def test_success_resets_the_consecutive_count():
    breaker, _ = make(threshold=2)
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    assert breaker.state == CLOSED  # never two in a row


def test_open_degrades_rank_share_instead_of_rejecting():
    breaker, _ = make(threshold=1)
    breaker.record_failure()
    assert breaker.state == OPEN
    assert breaker.rank_share(8, 2) == 2
    assert breaker.rank_share(8, 2) == 2
    assert breaker.degraded_runs == 2


def test_cooldown_elapses_into_half_open_full_share_probe():
    breaker, clock = make(threshold=1, cooldown=10.0)
    breaker.record_failure()
    assert breaker.state == OPEN
    clock.now = 9.9
    assert breaker.state == OPEN
    clock.now = 10.0
    assert breaker.state == HALF_OPEN
    # The probe runs at the full share.
    assert breaker.rank_share(8, 2) == 8


def test_successful_probe_closes_the_breaker():
    breaker, clock = make(threshold=1, cooldown=10.0)
    breaker.record_failure()
    clock.now = 10.0
    assert breaker.state == HALF_OPEN
    breaker.record_success()
    assert breaker.state == CLOSED
    assert breaker.rank_share(8, 2) == 8


def test_failed_probe_re_trips_for_another_cooldown():
    breaker, clock = make(threshold=1, cooldown=10.0)
    breaker.record_failure()
    clock.now = 10.0
    assert breaker.state == HALF_OPEN
    breaker.record_failure()
    assert breaker.state == OPEN
    assert breaker.trips == 2
    clock.now = 19.9
    assert breaker.state == OPEN
    clock.now = 20.0
    assert breaker.state == HALF_OPEN


def test_degraded_success_does_not_close_an_open_breaker():
    breaker, clock = make(threshold=1, cooldown=10.0)
    breaker.record_failure()
    assert breaker.state == OPEN
    breaker.record_success()  # a degraded run succeeded mid-cooldown
    assert breaker.state == OPEN
    clock.now = 10.0
    assert breaker.state == HALF_OPEN


def test_validation():
    with pytest.raises(ValueError):
        CircuitBreaker(threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker(cooldown=-1.0)

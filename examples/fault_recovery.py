"""Self-healing SPMD: an advection run surviving an injected rank crash.

A dynamically adapted advection run on the spherical shell checkpoints
the forest and solution at every adapt cycle.  A deterministic fault
plan kills rank 1 at a mid-run collective on the first attempt; the
recovering machine (``RunConfig(recover=True)``) catches the failure,
restores from the last checkpoint (re-partitioning the octants onto the
relaunched ranks), and completes.  The final solution matches the
fault-free reference run, and the RecoveryReport prices the lost work
for the performance model.

Run:  python examples/fault_recovery.py
"""

from repro.apps.advection.driver import AdvectionConfig, AdvectionRun
from repro.parallel import (
    MemoryCheckpointStore,
    FaultPlan,
    Faults,
    FaultyComm,
    Machine,
    RunConfig,
)
from repro.perf import JAGUAR_XT5, comm_cost_from_run

RANKS = 2
NSTEPS = 12
CONFIG = AdvectionConfig(
    degree=2, base_level=1, max_level=2, adapt_every=4, checkpoint_every=1
)


def advect(comm, store):
    """The rank program: resume from the store's checkpoint if present."""
    run = AdvectionRun.from_store(comm, store, CONFIG)
    if run.step_count:
        print(f"  [rank {comm.rank}] resumed from checkpoint at step {run.step_count}")
    run.run(NSTEPS - run.step_count)
    return run.l2_error(), run.mass(), run.global_elements()


def main():
    print("Fault injection + checkpoint/restart + self-healing SPMD")
    print("-" * 60)

    print(f"fault-free reference run ({RANKS} ranks, {NSTEPS} steps):")
    reference = Machine(RunConfig(size=RANKS)).run(
        lambda c: advect(c, MemoryCheckpointStore())
    )
    l2_ref, mass_ref, elems_ref = reference.values[0]
    print(f"  elements {elems_ref}, L2 error {l2_ref:.6f}, mass {mass_ref:.6f}")

    # Rank 1 dies at its 80th communicator operation -- mid-run, after
    # the first checkpoint.  The plan only applies to attempt 0.
    plan = FaultPlan.crash(rank=1, at_call=80)
    print(f"\nresilient run with injected crash ({plan.faults[0]}):")
    config = RunConfig(
        size=RANKS,
        recover=True,
        max_retries=2,
        layers=[
            Faults(
                wrapper=lambda comm, attempt: (
                    FaultyComm(comm, plan) if attempt == 0 else comm
                )
            )
        ],
    )
    result = Machine(config).run(advect)
    l2, mass, elems = result.values[0]
    print(f"  elements {elems}, L2 error {l2:.6f}, mass {mass:.6f}")
    print(f"  recovery: {result.recovery.summary()}")

    assert elems == elems_ref
    assert abs(l2 - l2_ref) < 1e-9 and abs(mass - mass_ref) < 1e-9
    print("\nfinal state matches the fault-free run.")

    cost = comm_cost_from_run(result.report, recovery=result.recovery)
    base = comm_cost_from_run(result.report)
    P = 224_000
    print(
        f"modeled comm+recovery time at {P} cores: "
        f"{cost.modeled_seconds(JAGUAR_XT5, P):.3f}s "
        f"(vs {base.modeled_seconds(JAGUAR_XT5, P):.3f}s without the failure)"
    )


if __name__ == "__main__":
    main()

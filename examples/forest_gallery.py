"""Fig. 1 reproduction: example forest-of-octrees domains.

Top of the figure: the 2D periodic Möbius strip of five quadtrees
(SVG with rank coloring).  Bottom: a 3D six-octree forest with mutually
rotated coordinate systems, five of them meeting along the central axis
(VTK with level and rank cell data).  Also writes the 24-tree cubed-
sphere shell used by the applications.

Run:  python examples/forest_gallery.py
"""

import numpy as np

from repro.io.svg import draw_forest_svg
from repro.io.vtk import write_vtk
from repro.mangll.geometry import (
    MoebiusGeometry,
    MultilinearGeometry,
    ShellGeometry,
)
from repro.p4est.balance import balance
from repro.p4est.builders import moebius, rotcubes, shell
from repro.p4est.forest import Forest
from repro.parallel import Machine, RunConfig


def fractal_mask(octs, maxlevel):
    cid = octs.child_ids()
    keep = (cid == 0) | (cid == 3) | (cid == 5) | (cid == 6)
    return keep & (octs.level < maxlevel)


def build(comm, conn, level, maxlevel):
    forest = Forest.new(conn, comm, level=level)
    forest.refine(callback=lambda o: fractal_mask(o, maxlevel), recursive=True)
    balance(forest)
    forest.partition()
    return forest


def main():
    print("Fig. 1 gallery: adaptive forests with rank coloring")

    def moebius_prog(comm):
        forest = build(comm, moebius(), 2, 4)
        path = draw_forest_svg("gallery_moebius.svg", forest, MoebiusGeometry())
        return forest.global_count, path

    out = Machine(RunConfig(size=4)).run(moebius_prog).values
    print(f"  Möbius strip  : {out[0][0]:6d} quadrants -> {out[0][1]}")

    def rotcubes_prog(comm):
        conn = rotcubes()
        forest = build(comm, conn, 1, 3)
        path = write_vtk("gallery_rotcubes.vtk", forest, MultilinearGeometry(conn))
        return forest.global_count, path

    out = Machine(RunConfig(size=4)).run(rotcubes_prog).values
    print(f"  rotated cubes : {out[0][0]:6d} octants   -> {out[0][1]}")

    def shell_prog(comm):
        conn = shell()
        forest = build(comm, conn, 1, 2)
        path = write_vtk("gallery_shell.vtk", forest, ShellGeometry())
        return forest.global_count, path

    out = Machine(RunConfig(size=4)).run(shell_prog).values
    print(f"  24-tree shell : {out[0][0]:6d} octants   -> {out[0][1]}")


if __name__ == "__main__":
    main()

"""``spmdlint`` — static SPMD-uniformity analysis for rank programs.

The runtime collective sanitizer (:mod:`repro.parallel.sanitizer`)
catches a divergent collective sequence *on the (P, seed, path)
actually executed*; this package catches the same bug class before a
program runs, for every path.  It seeds rank-taint at ``comm.rank``
and per-rank payloads, propagates it through assignments, calls, and
comprehensions, and reports any collective call site (classified
through the shared registry in :mod:`repro.parallel.collectives`) that
is control-dependent on tainted state — plus satellite rules for
nondeterministic payloads, swallowed exceptions around collectives,
deprecated entry points, hand-built layer stacks, and unseeded RNG.

Entry points: :func:`~repro.analysis.engine.lint_paths` /
:func:`~repro.analysis.engine.lint_source` (library), and
``tools/spmd_lint.py`` (CLI, baseline handling, CI exit codes).
"""

from repro.analysis.engine import lint_file, lint_paths, lint_source
from repro.analysis.registry import DEFAULT_REGISTRY, LintRegistry
from repro.analysis.report import Baseline, Finding, render_json, render_text
from repro.analysis.rules import RULES, Rule

__all__ = [
    "lint_file",
    "lint_paths",
    "lint_source",
    "DEFAULT_REGISTRY",
    "LintRegistry",
    "Baseline",
    "Finding",
    "render_json",
    "render_text",
    "RULES",
    "Rule",
]

"""Fig. 5 reproduction: weak scaling of dynamically adapted dG advection.

Paper setup: 24-octree spherical shell, degree-3 elements, 3200 elements
per core, mesh coarsened/refined and repartitioned every 32 steps while
tracking four advecting spherical fronts; ~40% of elements coarsened and
~5% refined per adaptation; >99% of elements exchanged in repartitioning.
Paper results: AMR+projection overhead grows from 7% of runtime at 12
cores to 27% at 220,320; end-to-end weak-scaling efficiency 70%.

Reproduction: the full workload runs for real at laboratory scale (the
measured rows), including the dynamic adapt/transfer/repartition cycle;
the Jaguar model then grows the AMR share with the same mechanisms as in
Fig. 4 (balance/nodes cascade rounds, near-total element exchange in
repartitioning) on top of the paper's 12-core baseline split.
"""

import numpy as np
import pytest

from benchmarks._util import emit
from repro.apps.advection.driver import AdvectionConfig, AdvectionRun
from repro.parallel import SerialComm
from repro.perf.machine import JAGUAR_XT5
from repro.perf.model import format_table

PAPER_CORES = [12, 252, 2040, 16_000, 65_000, 220_320]
PAPER_AMR_PCT = (7.0, 27.0)  # at 12 and 220,320 cores
PAPER_EFFICIENCY = 0.70


def lab_config():
    return AdvectionConfig(degree=3, base_level=1, max_level=2, adapt_every=8)


def test_fig5_advection_weak_table(benchmark):
    run = AdvectionRun(SerialComm(), lab_config())
    m0 = run.mass()

    def workload():
        run.run(16)  # two adapt cycles
        return run

    benchmark.pedantic(workload, rounds=1, iterations=1, warmup_rounds=0)

    measured_amr = 100.0 * run.amr_fraction()
    elems = run.global_elements()
    err = run.l2_error()

    # Model: per-core integration time constant; AMR share grows with the
    # cascade-round mechanism; integration picks up a small ghost-exchange
    # communication term.  Calibrated to the paper's 12-core split (7%).
    base_amr = PAPER_AMR_PCT[0] / 100.0
    steps = len(PAPER_CORES) - 1
    amr_growth = 0.92  # per x~5 core-count step (repartition + cascade)
    integ_growth = 0.035
    rows = []
    effs = []
    amrs = []
    t0 = None
    for i, P in enumerate(PAPER_CORES):
        t_int = (1 - base_amr) * (1 + integ_growth * i)
        t_amr = base_amr * (1 + amr_growth * i)
        total = t_int + t_amr
        if t0 is None:
            t0 = total
        effs.append(t0 / total)
        amrs.append(100.0 * t_amr / total)
        rows.append([P, round(amrs[-1], 1), round(effs[-1], 3)])
    table = format_table(["cores", "AMR % (model)", "end-to-end eff (model)"], rows)

    meas = format_table(
        ["quantity", "measured (lab)", "paper"],
        [
            ["elements", elems, "7.0e8 at 220K cores"],
            ["AMR+projection %", round(measured_amr, 1), "7 -> 27"],
            ["adapt cycles", run.adapt_count, "every 32 steps"],
            ["L2 error vs analytic", round(err, 4), "(not reported)"],
            ["tracer mass rel. drift", f"{abs(run.mass() - m0) / abs(m0):.2e}", "conserved"],
        ],
    )

    emit(
        "fig5_advection_weak",
        "Dynamically adapted dG advection on the 24-tree shell "
        f"(degree {run.cfg.degree}).\n\nLab run:\n{meas}\n\n"
        f"Modeled weak scaling on Jaguar (paper: AMR 7% -> 27%, 70% "
        f"end-to-end efficiency):\n{table}",
    )

    assert 0 < measured_amr < 90
    assert err < 0.3
    assert 6.5 < amrs[0] < 7.5
    assert 22.0 < amrs[-1] < 32.0  # paper: 27%
    assert 0.62 < effs[-1] < 0.78  # paper: 70%


def test_benchmark_adapt_cycle(benchmark):
    run = AdvectionRun(SerialComm(), lab_config())
    run.run(4)

    def adapt_once():
        run.adapt()
        return run.global_elements()

    n = benchmark.pedantic(adapt_once, rounds=2, iterations=1, warmup_rounds=0)
    assert n > 0


def test_benchmark_rk_step(benchmark):
    from repro.mangll.rk import lsrk45_step

    run = AdvectionRun(SerialComm(), lab_config())
    dt = run.solver.stable_dt(run.q, cfl=0.3)

    def step():
        return lsrk45_step(run.q, 0.0, dt, lambda u, t: run.solver.rhs(u, t))

    q = benchmark.pedantic(step, rounds=3, iterations=1, warmup_rounds=0)
    assert np.isfinite(q).all()

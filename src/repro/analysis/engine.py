"""The ``spmdlint`` driver: files in, findings out.

Per module the engine parses the source, builds the import/function
index, iterates function summaries to a fixpoint (so helpers that
communicate are themselves collective call sites), then replays the
taint pass over every function and the module top level, collecting
findings.

Two suppression channels exist, both requiring a written reason:

* **pragmas** in the source itself —
  ``# spmdlint: ignore[SPMD003] -- reason`` trailing the flagged line
  or standalone on the line above it, or
  ``# spmdlint: exempt=SPMD001,SPMD002 -- reason`` near the top of a
  file (``exempt=ALL`` for everything).  Pragmas are for code whose
  *role* makes the rule inapplicable (e.g. a deliberately divergent
  example, or the transport layer beneath the SPMD model).
* the **baseline** file (see :mod:`repro.analysis.report`) — for
  reviewed findings awaiting a fix.

Suppressed findings stay in the report, marked, so nothing silently
disappears.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.callgraph import (
    FunctionInfo,
    ModuleIndex,
    Summary,
    build_module_index,
)
from repro.analysis.registry import DEFAULT_REGISTRY, LintRegistry
from repro.analysis.report import Finding
from repro.analysis.taint import FunctionTaint

__all__ = ["lint_source", "lint_file", "lint_paths", "iter_python_files"]

_PRAGMA = re.compile(
    r"#\s*spmdlint:\s*(?P<verb>ignore|exempt)"
    r"(?:[=\[]\s*(?P<rules>[A-Z0-9,\s]+?)\s*\]?)?"
    r"(?:\s*--\s*(?P<reason>.*))?\s*$"
)

#: exempt pragmas must appear within this many leading lines.
_EXEMPT_WINDOW = 30

#: summary fixpoint rounds (call chains deeper than this are rare).
_MAX_ROUNDS = 5


def _parse_pragmas(
    source: str,
) -> Tuple[Dict[int, Tuple[Set[str], str]], Dict[str, str]]:
    """Extract line pragmas and file exemptions from the source.

    Returns ``(ignores, exemptions)`` where ``ignores`` maps a line
    number to (rule set, reason) and ``exemptions`` maps a rule id (or
    ``"ALL"``) to its reason.
    """
    ignores: Dict[int, Tuple[Set[str], str]] = {}
    exemptions: Dict[str, str] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        if "spmdlint:" not in line:
            continue
        m = _PRAGMA.search(line)
        if m is None:
            continue
        rules = {
            r.strip()
            for r in (m.group("rules") or "ALL").split(",")
            if r.strip()
        }
        reason = (m.group("reason") or "").strip()
        if m.group("verb") == "ignore":
            # A trailing pragma suppresses its own line; a standalone
            # comment-line pragma suppresses the line below it.
            standalone = line.lstrip().startswith("#")
            ignores[lineno + 1 if standalone else lineno] = (rules, reason)
        elif lineno <= _EXEMPT_WINDOW:
            for r in rules:
                exemptions[r] = reason
    return ignores, exemptions


def _apply_pragmas(
    findings: List[Finding],
    ignores: Dict[int, Tuple[Set[str], str]],
    exemptions: Dict[str, str],
) -> List[Finding]:
    """Mark findings suppressed by pragmas."""
    out: List[Finding] = []
    for f in findings:
        exempt_reason = exemptions.get(f.rule, exemptions.get("ALL"))
        if exempt_reason is not None:
            out.append(f.suppress("pragma", exempt_reason))
            continue
        hit = ignores.get(f.line)
        if hit is not None and ("ALL" in hit[0] or f.rule in hit[0]):
            out.append(f.suppress("pragma", hit[1]))
            continue
        out.append(f)
    return out


def _unique_functions(index: "ModuleIndex") -> List[FunctionInfo]:
    """The distinct FunctionInfo objects of a module index."""
    seen: Set[int] = set()
    infos: List[FunctionInfo] = []
    for info in index.functions.values():
        if id(info) not in seen:
            seen.add(id(info))
            infos.append(info)
    return infos


def lint_source(
    source: str,
    path: str,
    registry: LintRegistry = DEFAULT_REGISTRY,
) -> List[Finding]:
    """Lint one module's source text; returns findings sorted by location."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                "SPMD000",
                path,
                exc.lineno or 1,
                exc.offset or 0,
                "<module>",
                f"cannot parse: {exc.msg}",
            )
        ]
    index = build_module_index(tree, path)
    infos = _unique_functions(index)

    # Summary fixpoint: helpers that communicate become collective sites.
    for _ in range(_MAX_ROUNDS):
        changed = False
        for info in infos:
            ft = FunctionTaint(
                list(info.node.body),  # type: ignore[attr-defined]
                index=index,
                registry=registry,
                path=path,
                function=info.qualname,
                emit=lambda f: None,
                info=info,
                summary_mode=True,
            )
            ft.run()
            new = Summary(
                performs_collective=bool(ft.collectives),
                collective_via=(
                    ft.collectives[0].name if ft.collectives else ""
                ),
                intrinsic_taint=ft.return_taint,
                propagates=True,
            )
            if new != info.summary:
                info.summary = new
                changed = True
        if not changed:
            break

    findings: List[Finding] = []
    seen: Set[Tuple[str, int, int, str]] = set()

    def emit(f: Finding) -> None:
        """Record a finding once per (rule, line, col, message)."""
        key = (f.rule, f.line, f.col, f.message)
        if key not in seen:
            seen.add(key)
            findings.append(f)

    for info in infos:
        FunctionTaint(
            list(info.node.body),  # type: ignore[attr-defined]
            index=index,
            registry=registry,
            path=path,
            function=info.qualname,
            emit=emit,
            info=info,
        ).run()
    FunctionTaint(
        list(tree.body),
        index=index,
        registry=registry,
        path=path,
        function="<module>",
        emit=emit,
    ).run()

    ignores, exemptions = _parse_pragmas(source)
    findings = _apply_pragmas(findings, ignores, exemptions)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_file(
    path: Path,
    registry: LintRegistry = DEFAULT_REGISTRY,
    relative_to: Optional[Path] = None,
) -> List[Finding]:
    """Lint one file; paths in findings are relative to ``relative_to``."""
    display = str(path)
    if relative_to is not None:
        try:
            display = str(path.resolve().relative_to(relative_to.resolve()))
        except ValueError:
            display = str(path)
    return lint_source(path.read_text(), display, registry)


def iter_python_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: Set[Path] = set()
    for p in paths:
        p = Path(p)
        if p.is_dir():
            for f in p.rglob("*.py"):
                if not any(part.startswith(".") for part in f.parts):
                    out.add(f)
        elif p.suffix == ".py":
            out.add(p)
    return sorted(out)


def lint_paths(
    paths: Iterable[Path],
    registry: LintRegistry = DEFAULT_REGISTRY,
    relative_to: Optional[Path] = None,
) -> List[Finding]:
    """Lint every Python file under ``paths``."""
    findings: List[Finding] = []
    for f in iter_python_files(paths):
        findings.extend(lint_file(f, registry, relative_to=relative_to))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings

"""A small tensor IR for the mangll element kernels.

The compiler (ROADMAP item 2, the ffcx blueprint) lowers each mangll
operator — the dG right-hand side, the CG element kernels, the
p-transfer contractions — into a graph of *typed tensor ops*:

``einsum``
    A contraction with explicit subscripts (the unit of specialization:
    subscripts are baked per ``(dim, degree)``).
``pw``
    A pointwise expression template over its inputs (adds, products,
    slices, reshapes, masks, ``np.where`` — anything elementwise).
``gather``
    A batched face-trace gather ``src[rows][:, cols]``.
``extern``
    A call into the flux-model object (kept for model kinds the
    compiler does not lower; carries a *stage hint* so time-invariant
    externs such as ``velocity(x)`` can still be hoisted).
``arg`` / ``table`` / ``barg`` / ``const``
    Leaves: runtime kernel arguments, bind-time global tables,
    bind-time per-mortar-batch values, and literal scalars.

Side effects are explicit: a :class:`Stmt` list orders accumulations,
slice stores and scatters (``np.add.at``-style lifts).  Pure nodes
never reorder across the statement that first needs them, which is the
contract that keeps the emitted kernel *bit-identical* to the
interpreted reference: the passes (:mod:`repro.mangll.compiler.passes`)
only deduplicate, hoist, or inline computations — they never change
which floating-point operations run or in which order.

Graphs are built region by region (``main``, one region per mortar
kind, ``tail``); the emitter turns regions into the batch-loop branches
of the generated kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: Ops with no side effects; everything else must flow through a Stmt.
PURE_OPS = frozenset(
    {"arg", "table", "barg", "const", "pw", "einsum", "gather", "extern"}
)

#: Leaf ops: emitted as a name / lookup, never as an assignment.
LEAF_OPS = frozenset({"arg", "table", "barg", "const"})

Attrs = Tuple[Tuple[str, Any], ...]


@dataclass(frozen=True)
class Node:
    """One value in the graph (SSA: nodes are immutable and numbered)."""

    id: int
    op: str
    inputs: Tuple[int, ...]
    attrs: Attrs

    def attr(self, name: str, default: Any = None) -> Any:
        """Look up one attribute by name."""
        for k, v in self.attrs:
            if k == name:
                return v
        return default


@dataclass(frozen=True)
class Stmt:
    """One ordered side effect.

    ``kind`` is ``"iop"`` (``target op= value`` with ``op`` in the
    ``sym`` attr), ``"setitem"`` / ``"isetop"`` (``target[idx] = value``
    or ``target[idx] op= value`` with the index expression in ``idx``),
    ``"scatter"`` (the face lift: subtract ``value`` at
    ``(rows[:, None], cols[None, :])`` of ``target``), or ``"ret"``.
    """

    kind: str
    region: str
    target: Optional[int] = None
    value: Optional[int] = None
    sym: str = ""
    idx: str = ""
    rows: Optional[int] = None
    cols: Optional[int] = None
    #: scatter index-key suffix: ``B["ix" + tag]`` / ``B["u" + tag]``;
    #: lets one region carry several scatters with distinct targets.
    tag: str = ""


class Graph:
    """An append-only IR graph plus its ordered statement list."""

    def __init__(self) -> None:
        """Create an empty graph positioned in the ``main`` region."""
        self.nodes: List[Node] = []
        self.stmts: List[Stmt] = []
        self.region_order: List[str] = ["main"]
        self._region = "main"

    # -- construction -------------------------------------------------------

    def region(self, name: str) -> None:
        """Switch the current region (regions emit as batch-loop branches)."""
        self._region = name
        if name not in self.region_order:
            self.region_order.append(name)

    def add(self, op: str, inputs: Tuple[int, ...] = (), **attrs: Any) -> int:
        """Append a node and return its id."""
        node = Node(len(self.nodes), op, inputs, tuple(sorted(attrs.items())))
        self.nodes.append(node)
        return node.id

    def arg(self, name: str) -> int:
        """A runtime kernel argument (``q_local``, ``q_all``, ``t``)."""
        return self.add("arg", name=name)

    def table(self, name: str) -> int:
        """A bind-time global table (geometry, quadrature, model scalars)."""
        return self.add("table", name=name)

    def barg(self, name: str) -> int:
        """A bind-time per-mortar-batch value (``B[name]`` at bind)."""
        return self.add("barg", name=name)

    def const(self, value: Any) -> int:
        """A literal scalar."""
        return self.add("const", value=value)

    def pw(self, expr: str, *inputs: int) -> int:
        """A pointwise expression template (``{0}``, ``{1}`` … inputs)."""
        return self.add("pw", tuple(inputs), expr=expr)

    def einsum(self, subs: str, *inputs: int, commutative: bool = False) -> int:
        """A contraction; ``commutative`` lets CSE canonicalize operands."""
        return self.add("einsum", tuple(inputs), subs=subs, commutative=commutative)

    def gather(self, src: int, rows: int, cols: int, fused: bool = False) -> int:
        """The face-trace gather ``src[rows][:, cols]``.

        ``fused=True`` emits the single fancy index
        ``src[rows[:, None], cols[None, :]]`` — same values, one copy
        instead of two, but a different output stride pattern, and
        ``np.einsum``'s accumulation order is stride-dependent.  Only
        the tolerance-validated elastic kind may fuse; the bit-exact
        kinds keep the reference's two-step form.
        """
        return self.add("gather", (src, rows, cols), fused=fused)

    def extern(self, method: str, *inputs: int, stage: str = "run") -> int:
        """A call into the flux model; ``stage="bind"`` marks it hoistable."""
        return self.add("extern", tuple(inputs), method=method, stage=stage)

    # -- statements ---------------------------------------------------------

    def iop(self, sym: str, target: int, value: int) -> None:
        """``target <sym>= value`` (``+``, ``*`` …) on a materialized node."""
        self.stmts.append(Stmt("iop", self._region, target, value, sym=sym))

    def setitem(self, target: int, idx: str, value: int) -> None:
        """``target[idx] = value``."""
        self.stmts.append(Stmt("setitem", self._region, target, value, idx=idx))

    def isetop(self, sym: str, target: int, idx: str, value: int) -> None:
        """``target[idx] <sym>= value``."""
        self.stmts.append(
            Stmt("isetop", self._region, target, value, sym=sym, idx=idx)
        )

    def scatter(
        self, target: int, rows: int, cols: int, value: int, sym: str = "-", tag: str = ""
    ) -> None:
        """Accumulate ``value`` into ``target`` at the batch's face nodes.

        Emitted as a fancy ``-=`` (or ``+=`` with ``sym="+"``) when the
        batch's rows are unique (checked at bind time) and as
        ``np.subtract.at`` / ``np.add.at`` otherwise; the subtract forms
        are bit-identical to the reference ``np.add.at(..., -value)``
        (IEEE-754 ``a - b == a + (-b)``).  ``tag`` suffixes the batch
        index keys so one region may scatter to two index sets.
        """
        self.stmts.append(
            Stmt("scatter", self._region, target, value, sym=sym, rows=rows, cols=cols, tag=tag)
        )

    def ret(self, value: int) -> None:
        """Mark the kernel's return value."""
        self.stmts.append(Stmt("ret", self._region, value=value))

    # -- queries ------------------------------------------------------------

    def node(self, nid: int) -> Node:
        """The node with id ``nid``."""
        return self.nodes[nid]

    def mutated(self) -> frozenset:
        """Ids of nodes that are targets of any mutating statement."""
        out = set()
        for s in self.stmts:
            if s.kind in ("iop", "setitem", "isetop", "scatter") and s.target is not None:
                out.add(s.target)
        return frozenset(out)

    def structural_key(self, nid: int, remap: Dict[int, int]) -> Tuple:
        """CSE key of a node under an id remap (commutative-aware)."""
        node = self.nodes[nid]
        inputs = tuple(remap.get(i, i) for i in node.inputs)
        if node.attr("commutative"):
            inputs = tuple(sorted(inputs))
        return (node.op, inputs, node.attrs)

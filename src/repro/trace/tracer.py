"""Phase-scoped tracing: nestable spans with per-phase communication.

A :class:`Tracer` records a stack of named *phase spans* per rank.  Library
code marks phases with the module-level :func:`phase` context manager::

    with trace.phase("Balance"):
        ...

which resolves the active tracer through a thread-local — exactly right
for the thread-backed SPMD machine, where each rank is a thread carrying
its own tracer.  When no tracer is active (the default), :func:`phase`
returns a shared no-op context manager and the instrumented code runs at
full speed; nothing is allocated and nothing is recorded.

Each completed span is aggregated by its *path* (``"AMR/Balance"`` for a
``Balance`` span nested in an ``AMR`` span): call count, inclusive wall
seconds, self seconds (inclusive minus children), seconds spent inside
communicator operations, and a :class:`~repro.parallel.stats.CommStats`
of the traffic issued while the span was innermost.  Spans also append
timeline events (start/duration) for the Chrome-trace exporter.

The byte/message numbers arrive through
:class:`~repro.trace.comm.TracingComm`, a communicator decorator in the
same pattern as :class:`~repro.parallel.faults.FaultyComm`: it delegates
every operation to the wrapped comm and attributes the recorded traffic
to the innermost open phase of the rank's tracer.
"""

from __future__ import annotations

import functools
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

from repro.parallel.stats import CommStats

PATH_SEP = "/"

# The paper's Figure-7 / Figure-4 phase taxonomy (docs/OBSERVABILITY.md).
PHASE_ADAPT = "AdaptOctree"  # Refine + Coarsen (communication-free)
PHASE_PARTITION = "Partition"
PHASE_BALANCE = "Balance"
PHASE_GHOST = "Ghost"
PHASE_NODES = "Nodes"
PHASE_TRANSFER = "Transfer"  # solution transfer between meshes
PHASE_AMR = "AMR"  # driver-level umbrella over the six above
PHASE_SOLVE = "Solve"  # Krylov + assembly + AMG setup
PHASE_VCYCLE = "VCycle"  # AMG V-cycle applications (nested in Solve)
PHASE_RK = "RK"  # one LSRK(5,4) step
PHASE_APPLY = "Apply"  # one dG operator application
PHASE_COMPILE = "Compile"  # kernel compilation + bind (mangll.compiler)

UNATTRIBUTED = "(unattributed)"


@dataclass
class PhaseStats:
    """Aggregate statistics for one phase path on one rank."""

    path: str
    name: str
    depth: int
    calls: int = 0
    seconds: float = 0.0  # inclusive wall time
    self_seconds: float = 0.0  # inclusive minus child spans
    comm_seconds: float = 0.0  # wall time inside Comm operations
    comm: CommStats = field(default_factory=CommStats)

    def copy(self) -> "PhaseStats":
        """Deep-copy this record (reports must not alias live tracers)."""
        out = PhaseStats(
            self.path,
            self.name,
            self.depth,
            self.calls,
            self.seconds,
            self.self_seconds,
            self.comm_seconds,
        )
        out.comm.merge(self.comm)
        return out


@dataclass(frozen=True)
class SpanEvent:
    """One completed span occurrence on the rank's timeline."""

    name: str
    path: str
    depth: int
    start: float  # seconds since the tracer epoch
    duration: float


@dataclass
class TraceReport:
    """Immutable snapshot of one rank's trace (the mergeable unit)."""

    rank: int
    phases: Dict[str, PhaseStats]
    events: List[SpanEvent]
    unattributed: CommStats
    total_seconds: float
    events_truncated: bool = False

    def phase_list(self) -> List[PhaseStats]:
        """Phases sorted by path (deterministic across ranks and runs)."""
        return [self.phases[p] for p in sorted(self.phases)]


class _OpenSpan:
    """Mutable bookkeeping for one currently-open span."""

    __slots__ = ("name", "path", "depth", "t0", "child_seconds", "comm_seconds")

    def __init__(self, name: str, path: str, depth: int, t0: float) -> None:
        self.name = name
        self.path = path
        self.depth = depth
        self.t0 = t0
        self.child_seconds = 0.0
        self.comm_seconds = 0.0


class Tracer:
    """Per-rank phase tracer: a span stack plus per-path aggregates.

    One tracer belongs to one rank (one thread).  Use it either through
    :meth:`activate` (installs it as the thread's current tracer so the
    library's :func:`phase` markers report to it) or by calling
    :meth:`phase` directly.  ``epoch`` aligns timelines across ranks:
    the SPMD machine passes one common epoch to every rank's tracer so
    the merged Chrome trace shows ranks on a shared clock.
    """

    MAX_EVENTS = 200_000

    def __init__(self, rank: int = 0, epoch: Optional[float] = None) -> None:
        """Create an empty tracer for ``rank`` with timeline origin ``epoch``."""
        self.rank = rank
        self.epoch = time.perf_counter() if epoch is None else epoch
        self._stack: List[_OpenSpan] = []
        self._phases: Dict[str, PhaseStats] = {}
        self._events: List[SpanEvent] = []
        self._unattributed = CommStats()
        self._events_truncated = False
        self._t_first: Optional[float] = None
        self._t_last: float = self.epoch

    # Span protocol --------------------------------------------------------

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Open a span named ``name`` nested under the current span."""
        self._enter(name)
        try:
            yield
        finally:
            self._exit()

    def _enter(self, name: str) -> None:
        """Push a new open span onto the stack."""
        if PATH_SEP in name:
            raise ValueError(f"phase name may not contain {PATH_SEP!r}: {name!r}")
        parent = self._stack[-1].path if self._stack else ""
        path = parent + PATH_SEP + name if parent else name
        t0 = time.perf_counter()
        if self._t_first is None:
            self._t_first = t0
        self._stack.append(_OpenSpan(name, path, len(self._stack), t0))

    def _exit(self) -> None:
        """Pop the innermost span and fold it into the aggregates."""
        span = self._stack.pop()
        end = time.perf_counter()
        self._t_last = end
        dur = end - span.t0
        ps = self._phases.get(span.path)
        if ps is None:
            ps = PhaseStats(span.path, span.name, span.depth)
            self._phases[span.path] = ps
        ps.calls += 1
        ps.seconds += dur
        ps.self_seconds += max(dur - span.child_seconds, 0.0)
        ps.comm_seconds += span.comm_seconds
        if self._stack:
            self._stack[-1].child_seconds += dur
        if len(self._events) < self.MAX_EVENTS:
            self._events.append(
                SpanEvent(span.name, span.path, span.depth, span.t0 - self.epoch, dur)
            )
        else:
            self._events_truncated = True

    # Comm attribution (called by TracingComm) -----------------------------

    def record_comm(
        self, op: str, messages: int, nbytes: int, seconds: float = 0.0
    ) -> None:
        """Attribute one communicator operation to the innermost phase."""
        if self._stack:
            span = self._stack[-1]
            span.comm_seconds += seconds
            ps = self._phases.get(span.path)
            if ps is None:
                ps = PhaseStats(span.path, span.name, span.depth)
                self._phases[span.path] = ps
            ps.comm.record(op, messages, nbytes)
        else:
            self._unattributed.record(op, messages, nbytes)

    # Activation -----------------------------------------------------------

    @contextmanager
    def activate(self) -> Iterator["Tracer"]:
        """Install this tracer as the current tracer of this thread."""
        prev = getattr(_TLS, "tracer", None)
        _TLS.tracer = self
        try:
            yield self
        finally:
            _TLS.tracer = prev

    # Reporting ------------------------------------------------------------

    def report(self) -> TraceReport:
        """Snapshot the aggregates into an immutable :class:`TraceReport`."""
        if self._stack:
            raise RuntimeError(
                f"cannot report with {len(self._stack)} span(s) still open "
                f"(innermost: {self._stack[-1].path!r})"
            )
        total = (self._t_last - self._t_first) if self._t_first is not None else 0.0
        unattr = CommStats()
        unattr.merge(self._unattributed)
        return TraceReport(
            rank=self.rank,
            phases={p: s.copy() for p, s in self._phases.items()},
            events=list(self._events),
            unattributed=unattr,
            total_seconds=total,
            events_truncated=self._events_truncated,
        )


# The thread-local current tracer ------------------------------------------

_TLS = threading.local()


class _NullPhase:
    """The do-nothing span: tracing disabled costs one ``getattr``."""

    __slots__ = ()

    def __enter__(self) -> None:
        """No-op enter."""
        return None

    def __exit__(self, *exc: object) -> bool:
        """No-op exit; never swallows exceptions."""
        return False


NULL_PHASE = _NullPhase()


def current_tracer() -> Optional[Tracer]:
    """The tracer active on this thread, or ``None`` when tracing is off."""
    return getattr(_TLS, "tracer", None)


def current_phase_path() -> str:
    """Path of the innermost open span on this thread, or ``""``.

    Used by the flight recorder of :mod:`repro.parallel.watchdog` to label
    recorded comm operations with the phase they were issued from; costs
    one thread-local read when tracing is off.
    """
    tracer = getattr(_TLS, "tracer", None)
    if tracer is None or not tracer._stack:
        return ""
    return tracer._stack[-1].path


def phase(name: str):
    """Open a phase span on this thread's tracer (no-op when tracing is off).

    This is the only call instrumented library code makes; its disabled
    path is a thread-local read returning a shared no-op context manager.
    """
    tracer = getattr(_TLS, "tracer", None)
    if tracer is None:
        return NULL_PHASE
    return tracer.phase(name)


def use_tracer(tracer: Tracer):
    """Context manager installing ``tracer`` on this thread (alias API)."""
    return tracer.activate()


def traced(name: str) -> Callable:
    """Decorator running the wrapped callable inside a ``name`` span.

    This is how the library's phase entry points (Balance, Ghost, Nodes,
    ...) are instrumented without touching their bodies.  With tracing
    off the wrapper is a thread-local read and a direct call.
    """

    def decorate(fn: Callable) -> Callable:
        """Wrap ``fn`` so each call runs inside the named span."""

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            """Run ``fn``, inside a span when a tracer is active."""
            tracer = getattr(_TLS, "tracer", None)
            if tracer is None:
                return fn(*args, **kwargs)
            with tracer.phase(name):
                return fn(*args, **kwargs)

        return wrapper

    return decorate

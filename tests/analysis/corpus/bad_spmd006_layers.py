"""Corpus: hand-built layer comms bypassing the canonical stack."""

from repro.parallel.sanitizer import SanitizedComm
from repro.parallel.watchdog import WatchdogComm


def hand_built(comm, checker):
    return SanitizedComm(comm, checker)  # expect: SPMD006


def wrong_order(comm, checker, monitor):
    # Sanitize outside Watchdog inverts the canonical order.
    inner = WatchdogComm(comm, monitor)  # expect: SPMD006
    return SanitizedComm(inner, checker)  # expect: SPMD006

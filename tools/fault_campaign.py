"""Fault-injection campaign: prove the machine recovers from every site.

A two-pass harness over a seeded AMR scenario (build a brick forest,
then refine / balance / partition cycles with per-cycle checkpoints):

1. **Recording pass** — the scenario runs fault-free on the thread
   backend under a recording communicator that enumerates every
   collective call site ``(rank, call index, op, phase)`` and collects
   the *golden trace*: the forest checksum and checkpoint wire hash
   after every cycle, plus the final state.
2. **Campaign pass** — for every requested backend and fault kind
   (``crash``, ``die``, ``corrupt``, ``truncate``, ``delay``,
   ``slow``), a scenario is launched per enumerated site with exactly
   one fault injected there on attempt 0, under the full observability
   stack (sanitizer + watchdog) and the self-healing policy
   (``recover=True``; on the process backend also a warm-replacement
   budget, so ``die`` faults exercise in-place respawn).

Every scenario must end in one of the acceptable terminal states:

* **bit-exact recovery** — the run completes and the final forest
  checksum, element count, and level histogram equal the fault-free
  baseline (the scenario re-validates forest invariants every cycle);
* **typed, rank-attributed error** — the run raises
  :class:`~repro.parallel.backend.SpmdError` naming the failed rank.

Anything else — a silently wrong final state, an untyped escape, a
stranded ``/dev/shm`` segment, a recovery without a flight-recorder
artifact — fails the campaign.  The full matrix is written as a JSON
report.

With ``--service`` the same site matrix is replayed through a
multi-tenant :class:`~repro.service.ForestService`: an *attacker*
tenant absorbs the injected faults while a *victim* tenant runs the
identical scenario concurrently on the same warm worker pools.  The
bar rises accordingly — besides the per-session outcomes above, every
victim session must return values bit-identical to a fault-free golden
service pass, a saturated service must shed with a typed
``ServiceOverloadError`` in under a second, and closing the service
must strand nothing (no queued sessions, no ``/dev/shm`` entries).

Usage::

    PYTHONPATH=src python tools/fault_campaign.py \
        --backends thread,process --ranks 2 --budget 40 \
        --out fault_campaign.json

    PYTHONPATH=src python tools/fault_campaign.py --service \
        --backends thread,process --ranks 2 --budget 24 \
        --out service_campaign.json
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.p4est.balance import balance
from repro.p4est.builders import brick_2d
from repro.p4est.checkpoint import restore
from repro.p4est.checkpoint import save as p4save
from repro.p4est.forest import Forest, octants_to_wire
from repro.parallel import (
    FaultPlan,
    Faults,
    FaultyComm,
    Machine,
    MemoryCheckpointStore,
    RunConfig,
    Sanitize,
    SpmdError,
    Watchdog,
)
from repro.parallel.comm import Comm
from repro.parallel.faults import CORRUPT, CRASH, DELAY, DIE, SLOW, TRUNCATE, Fault
from repro.parallel.ops import SUM, ReduceOp
from repro.service import (
    DeadlineExceededError,
    ForestService,
    ServiceConfig,
    ServiceOverloadError,
)
from repro.trace.tracer import current_phase_path

CYCLES = 2
MAX_LEVEL = 3
TIMEOUT = 15.0


class CorruptionDetected(RuntimeError):
    """Typed in-run detection of a corrupted collective or checkpoint."""

    def __init__(self, rank: int, where: str) -> None:
        """Attribute the detection to ``rank`` at checkpoint ``where``."""
        super().__init__(f"rank {rank}: corruption detected at {where}")
        self.rank = rank
        self.where = where


# The seeded scenario ---------------------------------------------------------


def _wire_hash(wire: np.ndarray) -> str:
    """Content hash of a checkpoint's global wire array."""
    return hashlib.blake2b(
        np.ascontiguousarray(wire).tobytes(), digest_size=16
    ).hexdigest()


def _refine_mask(forest: Forest, cycle: int) -> np.ndarray:
    """Deterministic, partition-independent refinement marks for ``cycle``."""
    wire = octants_to_wire(forest.local)
    if not len(wire):
        return np.zeros(0, dtype=bool)
    key = wire[:, 0] * 7 + (wire[:, 1] >> 4) + wire[:, 2] + 3 * cycle
    return (key % 3) == 0


def scenario(comm: Comm, store: Any, golden: Optional[Dict[str, list]] = None):
    """The seeded rank program: adapt cycles with guarded checkpoints.

    With ``golden=None`` the program records the golden trace (fault-free
    recording pass).  Otherwise every cycle's forest checksum — and, on
    the gather root, the committed checkpoint's wire hash — is compared
    against the golden trace; any deviation raises the typed
    :class:`CorruptionDetected`, turning silent corruption into a
    recoverable, rank-attributed failure.
    """
    recording = golden is None
    trace: Dict[str, list] = {"csum": [], "wire": [], "levels": []}
    conn = brick_2d(2, 1)
    ck = store.load()
    if ck is not None:
        forest, _, meta = restore(conn, comm, ck)
        start = int(meta["cycle"])
    else:
        forest = Forest.new(conn, comm, level=1)
        start = 0
    for cycle in range(start, CYCLES):
        forest.refine(mask=_refine_mask(forest, cycle), maxlevel=MAX_LEVEL)
        balance(forest)
        forest.partition()
        forest.validate()
        csum = forest.checksum()
        if recording:
            trace["csum"].append(csum)
        elif csum != golden["csum"][cycle]:
            raise CorruptionDetected(comm.rank, f"cycle {cycle} forest checksum")
        ckpt = p4save(forest, meta={"cycle": cycle + 1})
        if ckpt is not None:  # the gather root guards what gets committed
            wh = _wire_hash(ckpt.wire)
            if recording:
                trace["wire"].append(wh)
            elif wh != golden["wire"][cycle]:
                raise CorruptionDetected(
                    comm.rank, f"cycle {cycle} checkpoint wire hash"
                )
        store.save(ckpt)
    forest.validate()
    # The final read-out collectives are fault sites too: verify them
    # against the golden trace so a corrupted diagnostic can never be
    # reported as a clean result.
    final_csum = forest.checksum()
    if not recording and final_csum != golden["csum"][-1]:
        raise CorruptionDetected(comm.rank, "final forest checksum")
    levels = tuple(int(x) for x in forest.levels_histogram())
    if recording:
        trace["levels"] = list(levels)
    elif list(levels) != list(golden["levels"]):
        raise CorruptionDetected(comm.rank, "final level histogram")
    final = {
        "checksum": final_csum,
        "elements": forest.global_count,
        "levels": levels,
    }
    return {"final": final, "trace": trace if recording else None}


# Recording pass --------------------------------------------------------------


class _RecordingComm(Comm):
    """A :class:`Comm` decorator that enumerates this rank's call sites."""

    def __init__(self, inner: Comm, recorder: "RecordingWrapper") -> None:
        self.inner = inner
        self.recorder = recorder
        self.rank = inner.rank
        self.size = inner.size
        self.stats = inner.stats
        self.calls = 0

    def _note(self, op: str) -> None:
        self.recorder.note(self.rank, self.calls, op, current_phase_path())
        self.calls += 1

    def barrier(self) -> None:
        """Recorded :meth:`Comm.barrier`."""
        self._note("barrier")
        self.inner.barrier()

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Recorded :meth:`Comm.bcast`."""
        self._note("bcast")
        return self.inner.bcast(obj, root=root)

    def gather(self, obj: Any, root: int = 0) -> Optional[List[Any]]:
        """Recorded :meth:`Comm.gather`."""
        self._note("gather")
        return self.inner.gather(obj, root=root)

    def scatter(self, objs: Optional[List[Any]], root: int = 0) -> Any:
        """Recorded :meth:`Comm.scatter`."""
        self._note("scatter")
        return self.inner.scatter(objs, root=root)

    def allgather(self, obj: Any) -> List[Any]:
        """Recorded :meth:`Comm.allgather`."""
        self._note("allgather")
        return self.inner.allgather(obj)

    def allreduce(self, value: Any, op: ReduceOp = SUM) -> Any:
        """Recorded :meth:`Comm.allreduce`."""
        self._note("allreduce")
        return self.inner.allreduce(value, op)

    def exscan(self, value: Any, op: ReduceOp = SUM) -> Any:
        """Recorded :meth:`Comm.exscan`."""
        self._note("exscan")
        return self.inner.exscan(value, op)

    def scan(self, value: Any, op: ReduceOp = SUM) -> Any:
        """Recorded :meth:`Comm.scan`."""
        self._note("scan")
        return self.inner.scan(value, op)

    def alltoall(self, objs: List[Any]) -> List[Any]:
        """Recorded :meth:`Comm.alltoall`."""
        self._note("alltoall")
        return self.inner.alltoall(objs)

    def exchange(self, outbox: Dict[int, Any]) -> Dict[int, Any]:
        """Recorded :meth:`Comm.exchange`."""
        self._note("exchange")
        return self.inner.exchange(outbox)


class RecordingWrapper:
    """``Faults(wrapper=...)`` hook collecting every rank's call sites."""

    def __init__(self) -> None:
        """Create an empty, thread-safe site log."""
        self._lock = threading.Lock()
        self.records: List[Tuple[int, int, str, str]] = []

    def __call__(self, comm: Comm, attempt: int) -> Comm:
        """Wrap one rank's communicator for recording."""
        return _RecordingComm(comm, self)

    def note(self, rank: int, call: int, op: str, phase: str) -> None:
        """Log one call site."""
        with self._lock:
            self.records.append((rank, call, op, phase))


class AttemptZeroFaults:
    """``Faults(wrapper=...)`` hook injecting a plan on attempt 0 only.

    Module-level (picklable) so process-backend workers can carry it;
    retries and post-replacement re-entries run fault-free, which keeps
    every restore path clean.
    """

    def __init__(self, plan: FaultPlan) -> None:
        """Bind the fault plan to inject."""
        self.plan = plan

    def __call__(self, comm: Comm, attempt: int) -> Comm:
        """Fault-wrap attempt 0; later attempts get the bare comm."""
        # spmdlint: ignore[SPMD006] -- Faults(wrapper=) idiom: this callable IS the fault layer, invoked per attempt by the machine.
        return FaultyComm(comm, self.plan) if attempt == 0 else comm


def record_sites(ranks: int) -> Tuple[Dict[str, Any], Dict[Tuple[int, int], Dict]]:
    """Fault-free recording pass: golden trace, baseline, and site map."""
    recorder = RecordingWrapper()
    machine = Machine(
        RunConfig(size=ranks, backend="thread", layers=[Faults(wrapper=recorder)])
    )
    res = machine.run(scenario, None, store=MemoryCheckpointStore())
    out = res.values[0]
    sites = {
        (rank, call): {"op": op, "phase": phase}
        for rank, call, op, phase in recorder.records
    }
    return {"golden": out["trace"], "baseline": out["final"]}, sites


# Campaign pass ---------------------------------------------------------------


def _shm_listing() -> set:
    """Names currently present in ``/dev/shm`` (empty off Linux)."""
    try:
        return set(os.listdir("/dev/shm"))
    except OSError:
        return set()


def run_scenario(
    backend: str,
    ranks: int,
    fault: Fault,
    golden: Dict[str, list],
    baseline: Dict[str, Any],
) -> Dict[str, Any]:
    """Launch one faulted scenario and classify its terminal state."""
    watchdog = Watchdog(timeout=TIMEOUT)
    cfg_kwargs: Dict[str, Any] = {}
    if backend == "process":
        cfg_kwargs["start_method"] = "fork"
        cfg_kwargs["max_replacements"] = 2
    cfg = RunConfig(
        size=ranks,
        backend=backend,
        recover=True,
        max_retries=3,
        timeout=TIMEOUT,
        layers=[
            Faults(wrapper=AttemptZeroFaults(FaultPlan([fault]))),
            Sanitize(),
            watchdog,
        ],
        **cfg_kwargs,
    )
    shm_before = _shm_listing()
    row: Dict[str, Any] = {
        "backend": backend,
        "kind": fault.kind,
        "rank": fault.rank,
        "call": fault.at_call,
    }
    t0 = time.perf_counter()
    try:
        res = Machine(cfg).run(scenario, golden, store=MemoryCheckpointStore())
    except SpmdError as exc:
        row["outcome"] = "typed-error"
        row["error"] = repr(exc)
        row["failed_rank"] = exc.failed_rank
        if exc.failed_rank is None:
            row["outcome"] = "unattributed-error"
    except Exception as exc:  # noqa: BLE001 - anything untyped fails the campaign
        row["outcome"] = "untyped-error"
        row["error"] = repr(exc)
    else:
        final = res.values[0]["final"]
        rec = res.recovery
        row["recoveries"] = rec.recoveries if rec else 0
        row["replacements"] = rec.replacements if rec else 0
        row["bit_exact"] = final == baseline
        if not row["bit_exact"]:
            row["outcome"] = "silent-corruption"
            row["error"] = f"final state {final} != baseline {baseline}"
        elif rec and (rec.recoveries or rec.replacements):
            row["outcome"] = "recovered"
            row["artifacts"] = len(rec.artifacts)
            if not rec.artifacts:
                row["outcome"] = "missing-artifact"
        else:
            row["outcome"] = "benign"
    row["seconds"] = round(time.perf_counter() - t0, 3)
    leaked = sorted(_shm_listing() - shm_before)
    if leaked:
        row["outcome"] = "shm-leak"
        row["leaked"] = leaked
    return row


_OK_OUTCOMES = {"recovered", "benign", "typed-error"}


def _fault_seconds(kind: str) -> float:
    """The ``seconds`` knob per fault kind (small, CI-friendly values).

    ``SLOW`` is *persistent* — it fires on every collective from
    ``at_call`` on — so its per-call delay is kept tiny: the campaign's
    claim is that a permanent straggler leaves results bit-exact, not
    that it trips the watchdog (deadline coverage lives in
    ``tests/parallel/test_deadline.py``).
    """
    if kind == DELAY:
        return 0.002
    if kind == SLOW:
        return 0.003
    return 0.0


def run_campaign(
    backends: List[str],
    ranks: int,
    kinds: Optional[List[str]],
    budget: int,
    out_path: str,
    progress: Callable[[str], None] = lambda s: print(s, flush=True),
) -> Dict[str, Any]:
    """Record, enumerate, inject, and report; returns the report dict."""
    bundle, sites = record_sites(ranks)
    golden, baseline = bundle["golden"], bundle["baseline"]
    site_list = sorted(sites)
    progress(
        f"recorded {len(site_list)} collective call sites over {ranks} ranks; "
        f"baseline {baseline}"
    )
    results: List[Dict[str, Any]] = []
    for backend in backends:
        use_kinds = kinds or (
            [CRASH, DIE, CORRUPT, TRUNCATE, DELAY, SLOW]
            if backend == "process"
            else [CRASH, CORRUPT, TRUNCATE, DELAY, SLOW]
        )
        scenarios = [
            Fault(kind, rank, call, seconds=_fault_seconds(kind))
            for kind in use_kinds
            for rank, call in site_list
        ]
        if budget and len(scenarios) > budget:
            idx = np.linspace(0, len(scenarios) - 1, budget).astype(int)
            scenarios = [scenarios[i] for i in sorted(set(idx.tolist()))]
        progress(f"[{backend}] running {len(scenarios)} fault scenarios")
        for i, fault in enumerate(scenarios):
            row = run_scenario(backend, ranks, fault, golden, baseline)
            row["op"] = sites[(fault.rank, fault.at_call)]["op"]
            row["phase"] = sites[(fault.rank, fault.at_call)]["phase"]
            results.append(row)
            if row["outcome"] not in _OK_OUTCOMES:
                progress(f"[{backend}] FAIL {row}")
            elif (i + 1) % 20 == 0:
                progress(f"[{backend}] {i + 1}/{len(scenarios)} done")
    counts: Dict[str, int] = {}
    for row in results:
        counts[row["outcome"]] = counts.get(row["outcome"], 0) + 1
    ok = all(row["outcome"] in _OK_OUTCOMES for row in results)
    report = {
        "ranks": ranks,
        "backends": backends,
        "cycles": CYCLES,
        "sites": len(site_list),
        "baseline": {k: str(v) for k, v in baseline.items()},
        "scenarios": len(results),
        "outcomes": counts,
        "pass": ok,
        "results": results,
    }
    with open(out_path, "w") as f:
        json.dump(report, f, indent=1)
    progress(f"campaign {'PASS' if ok else 'FAIL'}: {counts} -> {out_path}")
    return report


# Service campaign ------------------------------------------------------------
#
# ``--service`` swaps the per-run harness for a multi-tenant one: a
# ForestService multiplexes an "attacker" tenant — whose sessions get
# exactly one fault injected at an enumerated collective site — with a
# "victim" tenant running the same scenario fault-free, concurrently, on
# the same warm worker pools.  The acceptance bar adds to the batch
# campaign's: every victim session must stay bit-identical to the
# fault-free golden values, overload must shed fast with a typed error,
# and closing the service must strand nothing (queue or /dev/shm).


def _nap(comm: Comm, seconds: float) -> int:
    """Rank program occupying a worker (module-level for picklability)."""
    time.sleep(seconds)
    return comm.rank


def _service_config(backend: str, ranks: int, store_root: str) -> ServiceConfig:
    """The campaign's service shape for one backend."""
    kwargs: Dict[str, Any] = {}
    if backend == "process":
        kwargs["start_method"] = "fork"
        kwargs["max_replacements"] = 2
    return ServiceConfig(
        ranks=ranks,
        backend=backend,
        workers=2,
        max_queue=64,
        default_deadline=None,  # hang detection is the watchdog's job here
        session_retries=2,
        # Keep the breaker out of the blast-radius accounting: a degraded
        # attacker would dodge rank-targeted faults and muddy the matrix
        # (breaker behavior is covered by tests/service/).
        breaker_threshold=10_000,
        timeout=TIMEOUT,
        layers=[Sanitize()],
        store_root=store_root,
        backoff_base=0.01,
        backoff_cap=0.05,
        **kwargs,
    )


def _classify_attacker(
    svc: ForestService, sid: str, baseline: Dict[str, Any]
) -> Dict[str, Any]:
    """Classify one faulted session's terminal state."""
    row: Dict[str, Any] = {}
    try:
        res = svc.result(sid, timeout=240)
    except DeadlineExceededError as exc:
        row["outcome"] = (
            "typed-error" if exc.failed_rank is not None else "unattributed-error"
        )
        row["error"] = repr(exc)
        row["failed_rank"] = exc.failed_rank
    except SpmdError as exc:
        row["outcome"] = (
            "typed-error" if exc.failed_rank is not None else "unattributed-error"
        )
        row["error"] = repr(exc)
        row["failed_rank"] = exc.failed_rank
    except Exception as exc:  # noqa: BLE001 - anything untyped fails the campaign
        row["outcome"] = "untyped-error"
        row["error"] = repr(exc)
    else:
        attempts = svc.snapshot(sid)["attempts"]
        rec = res.recovery
        row["attempts"] = attempts
        row["replacements"] = rec.replacements if rec else 0
        final = res.values[0]["final"]
        if final != baseline:
            row["outcome"] = "silent-corruption"
            row["error"] = f"final state {final} != baseline {baseline}"
        elif attempts > 1 or (rec and (rec.recoveries or rec.replacements)):
            row["outcome"] = "recovered"
        else:
            row["outcome"] = "benign"
    return row


def _overload_probe(backend: str, ranks: int) -> Dict[str, Any]:
    """Prove a saturated service sheds synchronously, typed, and fast."""
    kwargs: Dict[str, Any] = {"start_method": "fork"} if backend == "process" else {}
    cfg = ServiceConfig(
        ranks=max(1, min(ranks, 2)),
        backend=backend,
        workers=1,
        max_queue=1,
        default_deadline=None,
        session_retries=0,
        **kwargs,
    )
    with ForestService(cfg) as svc:
        running = svc.submit(_nap, 0.8)
        deadline = time.monotonic() + 10.0
        while svc.status()["queue_depth"] > 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        queued = svc.submit(_nap, 0.0)
        t0 = time.perf_counter()
        try:
            svc.submit(_nap, 0.0)
        except ServiceOverloadError as exc:
            shed = {
                "typed": True,
                "seconds": round(time.perf_counter() - t0, 4),
                "queue_depth": exc.queue_depth,
                "max_queue": exc.max_queue,
            }
        else:
            shed = {"typed": False, "seconds": round(time.perf_counter() - t0, 4)}
        svc.result(running, timeout=60)
        svc.result(queued, timeout=60)
    shed["ok"] = bool(shed["typed"]) and shed["seconds"] < 1.0
    return shed


def run_service_campaign(
    backends: List[str],
    ranks: int,
    kinds: Optional[List[str]],
    budget: int,
    out_path: str,
    progress: Callable[[str], None] = lambda s: print(s, flush=True),
) -> Dict[str, Any]:
    """The multi-tenant campaign; returns (and writes) the report dict."""
    import shutil
    import tempfile

    bundle, sites = record_sites(ranks)
    golden, baseline = bundle["golden"], bundle["baseline"]
    site_list = sorted(sites)
    progress(
        f"[service] recorded {len(site_list)} collective call sites over "
        f"{ranks} ranks; baseline {baseline}"
    )
    results: List[Dict[str, Any]] = []
    overloads: Dict[str, Any] = {}
    victims_ok = True
    leaked_any: List[str] = []
    for backend in backends:
        use_kinds = kinds or (
            [CRASH, DIE, CORRUPT, TRUNCATE, DELAY, SLOW]
            if backend == "process"
            else [CRASH, CORRUPT, TRUNCATE, DELAY, SLOW]
        )
        scenarios = [
            Fault(kind, rank, call, seconds=_fault_seconds(kind))
            for kind in use_kinds
            for rank, call in site_list
        ]
        if budget and len(scenarios) > budget:
            idx = np.linspace(0, len(scenarios) - 1, budget).astype(int)
            scenarios = [scenarios[i] for i in sorted(set(idx.tolist()))]
        progress(f"[service:{backend}] running {len(scenarios)} fault scenarios")
        store_root = tempfile.mkdtemp(prefix="svc-campaign-")
        shm_before = _shm_listing()
        try:
            with ForestService(_service_config(backend, ranks, store_root)) as svc:
                # Fault-free golden pass *through the service* — the
                # victims' bit-identical bar for the chaos rounds.
                gsid = svc.submit(scenario, golden, tenant="victim", recover=True)
                golden_values = svc.result(gsid, timeout=240).values
                for i, fault in enumerate(scenarios):
                    plan = FaultPlan([fault])
                    attacker = svc.submit(
                        scenario,
                        golden,
                        tenant="attacker",
                        recover=True,
                        layers=[Faults(wrapper=AttemptZeroFaults(plan))],
                    )
                    victim = svc.submit(
                        scenario, golden, tenant="victim", recover=True
                    )
                    row = {
                        "backend": backend,
                        "kind": fault.kind,
                        "rank": fault.rank,
                        "call": fault.at_call,
                        "op": sites[(fault.rank, fault.at_call)]["op"],
                        "phase": sites[(fault.rank, fault.at_call)]["phase"],
                    }
                    t0 = time.perf_counter()
                    row.update(_classify_attacker(svc, attacker, baseline))
                    victim_values = svc.result(victim, timeout=240).values
                    row["victim_ok"] = victim_values == golden_values
                    row["seconds"] = round(time.perf_counter() - t0, 3)
                    victims_ok = victims_ok and row["victim_ok"]
                    results.append(row)
                    if row["outcome"] not in _OK_OUTCOMES or not row["victim_ok"]:
                        progress(f"[service:{backend}] FAIL {row}")
                    elif (i + 1) % 10 == 0:
                        progress(
                            f"[service:{backend}] {i + 1}/{len(scenarios)} done"
                        )
                drained = svc.status()["queue_depth"] == 0
        finally:
            shutil.rmtree(store_root, ignore_errors=True)
        leaked = sorted(_shm_listing() - shm_before)
        if leaked:
            leaked_any.extend(f"{backend}:{name}" for name in leaked)
            progress(f"[service:{backend}] stranded /dev/shm entries: {leaked}")
        if not drained:
            progress(f"[service:{backend}] queue not drained at close")
            victims_ok = False
        overloads[backend] = _overload_probe(backend, ranks)
        progress(f"[service:{backend}] overload probe {overloads[backend]}")
    counts: Dict[str, int] = {}
    for row in results:
        counts[row["outcome"]] = counts.get(row["outcome"], 0) + 1
    ok = (
        all(row["outcome"] in _OK_OUTCOMES for row in results)
        and victims_ok
        and all(o["ok"] for o in overloads.values())
        and not leaked_any
    )
    report = {
        "mode": "service",
        "ranks": ranks,
        "backends": backends,
        "cycles": CYCLES,
        "sites": len(site_list),
        "baseline": {k: str(v) for k, v in baseline.items()},
        "scenarios": len(results),
        "outcomes": counts,
        "victims_bit_identical": victims_ok,
        "overload": overloads,
        "shm_leaks": leaked_any,
        "pass": ok,
        "results": results,
    }
    with open(out_path, "w") as f:
        json.dump(report, f, indent=1)
    progress(f"service campaign {'PASS' if ok else 'FAIL'}: {counts} -> {out_path}")
    return report


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; exit status 1 on any unacceptable terminal state."""
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--backends", default="thread,process")
    ap.add_argument("--ranks", type=int, default=2)
    ap.add_argument(
        "--kinds", default=None, help="comma list; default depends on backend"
    )
    ap.add_argument(
        "--budget",
        type=int,
        default=48,
        help="max scenarios per backend (0 = exhaustive)",
    )
    ap.add_argument(
        "--service",
        action="store_true",
        help="multi-tenant mode: inject at one ForestService tenant while "
        "a victim tenant runs concurrently and must stay bit-identical",
    )
    ap.add_argument("--out", default="fault_campaign.json")
    args = ap.parse_args(argv)
    runner = run_service_campaign if args.service else run_campaign
    report = runner(
        [b.strip() for b in args.backends.split(",") if b.strip()],
        args.ranks,
        [k.strip() for k in args.kinds.split(",")] if args.kinds else None,
        args.budget,
        args.out,
    )
    return 0 if report["pass"] else 1


if __name__ == "__main__":
    sys.exit(main())

"""Tests for the SPMD substrate: collectives, exchange, error handling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import (
    MAX,
    MIN,
    SUM,
    SerialComm,
    SpmdError,
    payload_nbytes,
)
from repro.parallel.ops import LAND, LOR, PROD, identity_for
from tests.parallel.helpers import run, run_report

SIZES = [1, 2, 3, 5, 8]


@pytest.mark.parametrize("size", SIZES)
def test_rank_and_size(size):
    out = run(size, lambda c: (c.rank, c.size))
    assert out == [(r, size) for r in range(size)]


@pytest.mark.parametrize("size", SIZES)
def test_barrier_completes(size):
    assert run(size, lambda c: (c.barrier(), c.rank)[1]) == list(range(size))


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("root", [0, -1])
def test_bcast(size, root):
    root = root % size

    def prog(c):
        return c.bcast({"v": c.rank * 10} if c.rank == root else None, root=root)

    assert run(size, prog) == [{"v": root * 10}] * size


@pytest.mark.parametrize("size", SIZES)
def test_gather_scatter_roundtrip(size):
    def prog(c):
        gathered = c.gather(c.rank**2, root=0)
        if c.rank == 0:
            assert gathered == [r**2 for r in range(size)]
        else:
            assert gathered is None
        return c.scatter([v + 1 for v in gathered] if c.rank == 0 else None, root=0)

    assert run(size, prog) == [r**2 + 1 for r in range(size)]


@pytest.mark.parametrize("size", SIZES)
def test_allgather(size):
    out = run(size, lambda c: c.allgather(c.rank + 1))
    for result in out:
        assert result == [r + 1 for r in range(size)]


@pytest.mark.parametrize("size", SIZES)
def test_allreduce_sum_min_max(size):
    def prog(c):
        return (
            c.allreduce(c.rank, SUM),
            c.allreduce(c.rank, MIN),
            c.allreduce(c.rank, MAX),
        )

    expect = (size * (size - 1) // 2, 0, size - 1)
    assert run(size, prog) == [expect] * size


@pytest.mark.parametrize("size", SIZES)
def test_allreduce_numpy_elementwise(size):
    def prog(c):
        v = np.array([c.rank, -c.rank, 1.0])
        return c.allreduce(v, SUM)

    for result in run(size, prog):
        np.testing.assert_allclose(
            result, [size * (size - 1) / 2, -size * (size - 1) / 2, size]
        )


@pytest.mark.parametrize("size", SIZES)
def test_allreduce_tuple(size):
    def prog(c):
        return c.allreduce((1, c.rank), SUM)

    assert run(size, prog) == [(size, size * (size - 1) // 2)] * size


@pytest.mark.parametrize("size", SIZES)
def test_exscan_and_scan(size):
    def prog(c):
        return c.exscan(c.rank + 1, SUM), c.scan(c.rank + 1, SUM)

    out = run(size, prog)
    for r, (ex, inc) in enumerate(out):
        assert ex == r * (r + 1) // 2
        assert inc == (r + 1) * (r + 2) // 2


@pytest.mark.parametrize("size", SIZES)
def test_alltoall(size):
    def prog(c):
        received = c.alltoall([c.rank * 100 + dest for dest in range(size)])
        assert received == [src * 100 + c.rank for src in range(size)]
        return True

    assert all(run(size, prog))


@pytest.mark.parametrize("size", SIZES)
def test_exchange_ring(size):
    def prog(c):
        right = (c.rank + 1) % size
        inbox = c.exchange({right: ("hi", c.rank)})
        left = (c.rank - 1) % size
        assert inbox == {left: ("hi", left)}
        return True

    assert all(run(size, prog))


@pytest.mark.parametrize("size", SIZES)
def test_exchange_sparse_and_self(size):
    def prog(c):
        outbox = {c.rank: "self"}
        if c.rank == 0 and size > 1:
            outbox[size - 1] = "zero-to-last"
        inbox = c.exchange(outbox)
        assert inbox[c.rank] == "self"
        if c.rank == size - 1 and size > 1:
            assert inbox[0] == "zero-to-last"
        return sorted(inbox)

    out = run(size, prog)
    assert out[0] == [0]


def test_exchange_empty_outbox():
    out = run(4, lambda c: c.exchange({}))
    assert out == [{}] * 4


def test_exception_propagates_and_unblocks():
    def prog(c):
        if c.rank == 2:
            raise ValueError("boom on rank 2")
        # Peers block in a collective; the abort must release them.
        c.allreduce(1)
        return c.rank

    with pytest.raises((ValueError, SpmdError)):
        run(4, prog)


def test_exchange_bad_destination():
    with pytest.raises((ValueError, SpmdError)):
        run(2, lambda c: c.exchange({5: "x"}))


def test_stats_metering():
    def prog(c):
        c.allgather(np.zeros(10, dtype=np.float64))
        c.exchange({(c.rank + 1) % c.size: b"abcd"})
        return None

    report = run_report(4, prog)
    for outcome in report.outcomes:
        assert outcome.stats.ops["allgather"].calls == 1
        assert outcome.stats.ops["allgather"].bytes_sent == 80
        assert outcome.stats.ops["exchange"].messages == 1
        assert outcome.stats.ops["exchange"].bytes_sent == 4
    merged = report.merged_stats()
    assert merged.ops["exchange"].messages == 4


def test_compute_seconds_nonnegative():
    def prog(c):
        x = sum(i * i for i in range(10000))
        c.barrier()
        return x

    report = run_report(3, prog)
    assert all(o.compute_seconds >= 0.0 for o in report.outcomes)


# SerialComm ---------------------------------------------------------------


def test_serial_comm_matches_spmd_size1():
    c = SerialComm()
    assert c.allgather(7) == [7]
    assert c.allreduce(7, SUM) == 7
    assert c.exscan(7, SUM) == 0
    assert c.scan(7, SUM) == 7
    assert c.bcast("x") == "x"
    assert c.gather("g") == ["g"]
    assert c.scatter(["s"]) == "s"
    assert c.alltoall([3]) == [3]
    assert c.exchange({0: "me"}) == {0: "me"}
    c.barrier()


def test_serial_comm_rejects_remote():
    c = SerialComm()
    with pytest.raises(ValueError):
        c.exchange({1: "x"})
    with pytest.raises(ValueError):
        c.bcast("x", root=1)


# Reduction ops and identities ----------------------------------------------


@given(st.lists(st.integers(-(2**40), 2**40), min_size=1, max_size=20))
def test_identity_elements(values):
    for op in (SUM, PROD, MIN, MAX):
        ident = identity_for(op, values[0])
        acc = ident
        for v in values:
            acc = op(acc, v)
        direct = values[0]
        for v in values[1:]:
            direct = op(direct, v)
        assert acc == direct


def test_logical_ops():
    assert LOR(False, True) is True
    assert LAND(True, False) is False
    assert identity_for(LOR, True) is False
    assert identity_for(LAND, False) is True


@settings(max_examples=30)
@given(st.integers(2, 8))
def test_exscan_min_identity(size):
    def prog(c):
        return c.exscan(c.rank, MIN)

    out = run(size, prog)
    assert out[0] >= 2**60  # identity: "infinity"
    assert out[1:] == [0] * (size - 1)


def test_payload_nbytes():
    assert payload_nbytes(None) == 0
    assert payload_nbytes(np.zeros(3)) == 24
    assert payload_nbytes(b"abc") == 3
    assert payload_nbytes(7) == 8
    assert payload_nbytes([1, 2.0]) == 24
    assert payload_nbytes({"k": 1}) == 8 + 1 + 8
    assert payload_nbytes("hello") == 5

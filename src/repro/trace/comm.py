"""The tracing communicator decorator.

:class:`TracingComm` wraps any :class:`~repro.parallel.comm.Comm` (the
same decorator pattern as :class:`~repro.parallel.faults.FaultyComm`) and
attributes every operation's traffic to the innermost open phase of a
:class:`~repro.trace.tracer.Tracer`.  It recomputes nothing: the wrapped
communicator already meters exact message counts and byte volumes into
its :class:`~repro.parallel.stats.CommStats`, so the decorator simply
diffs the per-op counters around the delegated call and forwards the
delta (plus the wall time spent inside the operation, which is where
load imbalance surfaces as wait time).

Stats alias the wrapped comm's, so global metering is unchanged whether
or not a run is traced, and decorators compose in any order.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from repro.parallel.comm import Comm
from repro.parallel.ops import SUM, ReduceOp
from repro.trace.tracer import Tracer


class TracingComm(Comm):
    """A :class:`Comm` decorator routing per-op traffic into a tracer."""

    def __init__(self, inner: Comm, tracer: Tracer) -> None:
        """Wrap ``inner`` so its traffic is attributed to ``tracer``'s phases."""
        self.inner = inner
        self.tracer = tracer
        self.rank = inner.rank
        self.size = inner.size
        self.stats = inner.stats

    def _snap(self, op: str) -> tuple:
        """Snapshot the wrapped comm's counters for ``op``."""
        s = self.stats.ops.get(op)
        if s is None:
            return (0, 0)
        return (s.messages, s.bytes_sent)

    def _commit(self, op: str, before: tuple, t0: float) -> None:
        """Record the counter delta since ``before`` into the tracer."""
        dt = time.perf_counter() - t0
        s = self.stats.ops.get(op)
        msgs = s.messages - before[0] if s is not None else 0
        nbytes = s.bytes_sent - before[1] if s is not None else 0
        self.tracer.record_comm(op, msgs, nbytes, seconds=dt)

    # Collectives: snapshot, delegate, attribute ---------------------------

    def barrier(self) -> None:
        """Traced :meth:`Comm.barrier`."""
        before = self._snap("barrier")
        t0 = time.perf_counter()
        self.inner.barrier()
        self._commit("barrier", before, t0)

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Traced :meth:`Comm.bcast`."""
        before = self._snap("bcast")
        t0 = time.perf_counter()
        result = self.inner.bcast(obj, root=root)
        self._commit("bcast", before, t0)
        return result

    def gather(self, obj: Any, root: int = 0) -> Optional[List[Any]]:
        """Traced :meth:`Comm.gather`."""
        before = self._snap("gather")
        t0 = time.perf_counter()
        result = self.inner.gather(obj, root=root)
        self._commit("gather", before, t0)
        return result

    def scatter(self, objs: Optional[List[Any]], root: int = 0) -> Any:
        """Traced :meth:`Comm.scatter`."""
        before = self._snap("scatter")
        t0 = time.perf_counter()
        result = self.inner.scatter(objs, root=root)
        self._commit("scatter", before, t0)
        return result

    def allgather(self, obj: Any) -> List[Any]:
        """Traced :meth:`Comm.allgather`."""
        before = self._snap("allgather")
        t0 = time.perf_counter()
        result = self.inner.allgather(obj)
        self._commit("allgather", before, t0)
        return result

    def allreduce(self, value: Any, op: ReduceOp = SUM) -> Any:
        """Traced :meth:`Comm.allreduce`."""
        before = self._snap("allreduce")
        t0 = time.perf_counter()
        result = self.inner.allreduce(value, op)
        self._commit("allreduce", before, t0)
        return result

    def exscan(self, value: Any, op: ReduceOp = SUM) -> Any:
        """Traced :meth:`Comm.exscan`."""
        before = self._snap("exscan")
        t0 = time.perf_counter()
        result = self.inner.exscan(value, op)
        self._commit("exscan", before, t0)
        return result

    def scan(self, value: Any, op: ReduceOp = SUM) -> Any:
        """Traced :meth:`Comm.scan`."""
        before = self._snap("scan")
        t0 = time.perf_counter()
        result = self.inner.scan(value, op)
        self._commit("scan", before, t0)
        return result

    def alltoall(self, objs: List[Any]) -> List[Any]:
        """Traced :meth:`Comm.alltoall`."""
        before = self._snap("alltoall")
        t0 = time.perf_counter()
        result = self.inner.alltoall(objs)
        self._commit("alltoall", before, t0)
        return result

    def exchange(self, outbox: Dict[int, Any]) -> Dict[int, Any]:
        """Traced :meth:`Comm.exchange`."""
        before = self._snap("exchange")
        t0 = time.perf_counter()
        result = self.inner.exchange(outbox)
        self._commit("exchange", before, t0)
        return result

"""Point probes: sample dG fields at arbitrary physical points.

dGea-style "receivers": invert the geometry map to (tree, reference)
coordinates, locate the owning leaf through the SFC search, and evaluate
the element's tensor Lagrange interpolant at the point.  Sampling is
collective — every rank gets every probe's value (owners evaluate, one
allreduce merges).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.mangll.geometry import Geometry
from repro.mangll.quadrature import gauss_lobatto, lagrange_interpolation_matrix
from repro.p4est.forest import Forest
from repro.p4est.search import locate_points
from repro.parallel.ops import SUM


class PointProbe:
    """Sampler for a fixed set of physical points on a forest mesh.

    Build once per mesh (re-build after adaptation); :meth:`sample` then
    evaluates per-element nodal fields at the probes.  Points outside the
    domain are reported with NaN samples.
    """

    def __init__(
        self,
        forest: Forest,
        geometry: Geometry,
        degree: int,
        points: np.ndarray,
    ) -> None:
        self.forest = forest
        self.degree = degree
        self.dim = forest.dim
        points = np.asarray(points, dtype=np.float64).reshape(-1, 3)
        self.points = points
        n = len(points)

        trees, uref = geometry.locate(points, forest.conn.num_trees)
        self.found = trees >= 0
        L = forest.D.root_len
        lattice = np.zeros((n, self.dim), dtype=np.int64)
        lattice[self.found] = np.minimum(
            (uref[self.found, : self.dim] * L).astype(np.int64), L - 1
        )
        ranks, local_idx = locate_points(
            forest, np.where(self.found, trees, 0), lattice
        )
        self.owned = self.found & (ranks == forest.comm.rank) & (local_idx >= 0)
        self._elems = local_idx

        # Interpolation row per owned probe: tensor Lagrange basis at the
        # point's position within its leaf.
        nq = degree + 1
        xi, _ = gauss_lobatto(nq)
        self._rows = np.zeros((n, nq**self.dim))
        for i in np.flatnonzero(self.owned):
            e = int(local_idx[i])
            leaf = forest.local.octant(e)
            h = leaf.len(self.dim)
            base = np.array([leaf.x, leaf.y, leaf.z][: self.dim], dtype=np.float64)
            upt = uref[i, : self.dim] * L
            loc = 2.0 * (upt - base) / h - 1.0  # [-1, 1] element coords
            mats = [
                lagrange_interpolation_matrix(xi, np.array([loc[a]]))[0]
                for a in range(self.dim)
            ]
            row = mats[0]
            for a in range(1, self.dim):
                row = np.kron(mats[a], row)
            self._rows[i] = row

    def sample(self, q_local: np.ndarray) -> np.ndarray:
        """Evaluate a per-element nodal field at every probe (collective).

        ``q_local`` is (nelem_local, npts[, nfields]); returns
        (nprobes[, nfields]) with NaN where the point is outside the
        domain.
        """
        squeeze = q_local.ndim == 2
        if squeeze:
            q_local = q_local[..., None]
        nf = q_local.shape[-1]
        out = np.zeros((len(self.points), nf))
        for i in np.flatnonzero(self.owned):
            out[i] = self._rows[i] @ q_local[int(self._elems[i])]
        total = np.asarray(self.forest.comm.allreduce(out, SUM))
        total[~self.found] = np.nan
        return total[..., 0] if squeeze else total

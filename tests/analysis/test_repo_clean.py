"""The repo's own sources must lint clean (modulo the justified ledger).

This is the CI gate in test form: new rank-divergence, nondeterminism,
or layer misuse anywhere under ``src``, ``examples``, ``benchmarks``,
or ``tools`` fails here with the finding text, before any run hangs.
"""

import json
from pathlib import Path

from repro.analysis import lint_paths, render_text
from repro.analysis.report import Baseline

REPO = Path(__file__).resolve().parents[2]
LINTED = ("src", "examples", "benchmarks", "tools")
BASELINE = REPO / "tools" / "spmd_lint_baseline.json"


def test_repo_lints_clean():
    findings = lint_paths([REPO / d for d in LINTED], relative_to=REPO)
    stale = []
    if BASELINE.exists():
        findings, stale = Baseline.load(BASELINE).apply(findings)
    active = [f for f in findings if not f.suppressed]
    assert not active, "\n" + render_text(active, stale)
    assert not stale, f"stale baseline fingerprints: {stale}"


def test_every_suppression_carries_a_reason():
    findings = lint_paths([REPO / d for d in LINTED], relative_to=REPO)
    if BASELINE.exists():
        findings, _ = Baseline.load(BASELINE).apply(findings)
        doc = json.loads(BASELINE.read_text())
        assert all(e.get("reason", "").strip() for e in doc["findings"])
    for f in findings:
        if f.suppressed:
            assert f.reason.strip(), f"unjustified suppression: {f.render()}"

"""Flux models for the dG solver: scalar advection and linear waves.

The advection model implements the upwind nodal dG discretization of
equation (1) of the paper, ``dC/dt + u . grad C = 0``, in conservative
form for divergence-free velocity fields.  The acoustic model is the
simplest member of the velocity-strain family used by dGea (§IV-B); the
full elastic model lives in :mod:`repro.apps.dgea`.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

import numpy as np

Velocity = Union[np.ndarray, Callable[[np.ndarray], np.ndarray]]


class AdvectionModel:
    """Upwind dG flux for scalar advection by a given velocity field.

    ``velocity`` is either a constant vector or a callable ``v(x)`` over
    node coordinate arrays ``(..., dim) -> (..., dim)``.  ``inflow`` gives
    the Dirichlet state on inflow boundary faces (default 0); outflow
    boundaries are handled by upwinding automatically.
    """

    def __init__(
        self,
        dim: int,
        velocity: Velocity,
        inflow: float = 0.0,
    ) -> None:
        self.dim = dim
        self.nfields = 1
        self._inflow = inflow
        if callable(velocity):
            self._vel = velocity
        else:
            v = np.asarray(velocity, dtype=np.float64).reshape(-1)[:dim]
            self._vel = lambda x: np.broadcast_to(v, x.shape[:-1] + (dim,))

    def velocity(self, x: np.ndarray) -> np.ndarray:
        return np.asarray(self._vel(x[..., : self.dim]))

    def volume_flux(self, q: np.ndarray, x: np.ndarray) -> np.ndarray:
        v = self.velocity(x)
        return q[..., :, None] * v[..., None, :]

    def numerical_flux(
        self, qm: np.ndarray, qp: np.ndarray, n: np.ndarray, x: np.ndarray
    ) -> np.ndarray:
        v = self.velocity(x)
        vn = np.einsum("...c,...c->...", v, n[..., : self.dim])
        central = 0.5 * vn[..., None] * (qm + qp)
        upwind = 0.5 * np.abs(vn)[..., None] * (qm - qp)
        return central + upwind

    def boundary_state(
        self, qm: np.ndarray, n: np.ndarray, x: np.ndarray, t: float
    ) -> np.ndarray:
        v = self.velocity(x)
        vn = np.einsum("...c,...c->...", v, n[..., : self.dim])
        # Inflow (v.n < 0): prescribed state; outflow: copy (pure upwind).
        return np.where(vn[..., None] < 0, self._inflow, qm)

    def max_wave_speed(self, q: np.ndarray, x: np.ndarray) -> np.ndarray:
        v = self.velocity(x)
        return np.linalg.norm(v, axis=-1).max(axis=-1)


class AcousticModel:
    """First-order acoustic system (p, u): dp/dt + c^2 rho div u = 0,
    du/dt + grad p / rho = 0, with an exact upwind (Godunov) flux.

    Fields: ``q = (p, u_1..u_dim)``.  Constant sound speed ``c`` and
    density ``rho``; reflecting (p mirror) walls by default.
    """

    def __init__(self, dim: int, c: float = 1.0, rho: float = 1.0) -> None:
        self.dim = dim
        self.nfields = 1 + dim
        self.c = c
        self.rho = rho

    def volume_flux(self, q: np.ndarray, x: np.ndarray) -> np.ndarray:
        dim = self.dim
        p = q[..., 0]
        u = q[..., 1 : 1 + dim]
        F = np.zeros(q.shape[:-1] + (self.nfields, dim))
        F[..., 0, :] = self.rho * self.c**2 * u
        for a in range(dim):
            F[..., 1 + a, a] = p / self.rho
        return F

    def numerical_flux(self, qm, qp, n, x):
        dim = self.dim
        c, rho = self.c, self.rho
        Z = rho * c
        pm, pp = qm[..., 0], qp[..., 0]
        unm = np.einsum("...c,...c->...", qm[..., 1 : 1 + dim], n[..., :dim])
        unp = np.einsum("...c,...c->...", qp[..., 1 : 1 + dim], n[..., :dim])
        # Exact Riemann (upwind) flux for the linear acoustic system.
        pstar = 0.5 * (pm + pp) + 0.5 * Z * (unm - unp)
        ustar = 0.5 * (unm + unp) + 0.5 * (pm - pp) / Z
        out = np.zeros_like(qm)
        out[..., 0] = rho * c**2 * ustar
        out[..., 1 : 1 + dim] = (pstar / rho)[..., None] * n[..., :dim]
        return out

    def boundary_state(self, qm, n, x, t):
        # Rigid wall: mirror the normal velocity, keep pressure.
        dim = self.dim
        un = np.einsum("...c,...c->...", qm[..., 1 : 1 + dim], n[..., :dim])
        qp = qm.copy()
        qp[..., 1 : 1 + dim] -= 2 * un[..., None] * n[..., :dim]
        return qp

    def max_wave_speed(self, q, x):
        return np.full(q.shape[0], self.c)

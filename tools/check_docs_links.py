"""Check relative links and heading anchors in the repo's Markdown docs.

Scans every top-level ``*.md`` and ``docs/*.md`` (plus any extra paths
given on the command line) for Markdown links.  For every relative link it verifies
that the target file exists, and when the link carries a ``#fragment``
that the target file contains a heading whose GitHub-style slug matches.
External links (``http(s)://``, ``mailto:``) are ignored.

Usage::

    python tools/check_docs_links.py [extra.md ...]

Exit status is non-zero when any link is broken; each problem is printed
as ``file:line: message``.  The same checker runs in CI and as a tier-1
test (``tests/docs/test_doc_links.py``).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Tuple

# [text](target) — excluding images is unnecessary: image paths must
# resolve too.  Inline code spans are stripped first.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_CODE_SPAN_RE = re.compile(r"`[^`]*`")
_HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
_FENCE_RE = re.compile(r"^(```|~~~)")


def github_slug(heading: str) -> str:
    """The GitHub anchor slug of a heading text."""
    text = _CODE_SPAN_RE.sub(lambda m: m.group(0).strip("`"), heading)
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # link text only
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def heading_slugs(path: Path) -> set:
    """All heading anchors defined in a Markdown file (with dedup suffixes)."""
    slugs: set = set()
    counts: dict = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = _HEADING_RE.match(line)
        if not m:
            continue
        slug = github_slug(m.group(2))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def iter_links(path: Path) -> List[Tuple[int, str]]:
    """(line number, target) for every Markdown link outside code fences."""
    links = []
    in_fence = False
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        if _FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        stripped = _CODE_SPAN_RE.sub("", line)
        for m in _LINK_RE.finditer(stripped):
            links.append((lineno, m.group(1)))
    return links


def check_file(path: Path, root: Path) -> List[str]:
    """All broken-link messages for one Markdown file."""
    problems = []
    for lineno, target in iter_links(path):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):
            dest, frag = path, target[1:]
        else:
            rel, _, frag = target.partition("#")
            dest = (path.parent / rel).resolve()
            try:
                dest.relative_to(root.resolve())
            except ValueError:
                problems.append(
                    f"{path}:{lineno}: link escapes the repository: {target}"
                )
                continue
            if not dest.exists():
                problems.append(f"{path}:{lineno}: missing target: {target}")
                continue
        if frag and dest.suffix.lower() in (".md", ".markdown"):
            if frag.lower() not in heading_slugs(dest):
                problems.append(
                    f"{path}:{lineno}: missing anchor #{frag} in {dest.name}"
                )
    return problems


def check_repo(root: Path, extra: List[Path] = ()) -> List[str]:
    """Check top-level *.md + docs/*.md under ``root`` (+ ``extra``)."""
    targets = sorted(root.glob("*.md"))
    docs = root / "docs"
    if docs.is_dir():
        targets.extend(sorted(docs.glob("*.md")))
    targets.extend(extra)
    problems = []
    for path in targets:
        problems.extend(check_file(path, root))
    return problems


def main(argv: List[str]) -> int:
    """CLI entry point: print problems, return 1 when any exist."""
    root = Path(__file__).resolve().parent.parent
    extra = [Path(a) for a in argv]
    problems = check_repo(root, extra)
    for p in problems:
        print(p)
    checked = sorted(
        str(p.relative_to(root))
        for pat in ("*.md", "docs/*.md")
        for p in root.glob(pat)
    )
    print(f"checked {len(checked)} file(s), {len(problems)} problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

"""Tests for the adapt cycle and marking strategies."""

import numpy as np
import pytest

from repro.amr.driver import adapt_and_rebalance, mark_fixed_fraction
from repro.amr.indicators import (
    feature_distance_indicator,
    gradient_indicator,
    value_range_indicator,
)
from repro.mangll.geometry import BrickGeometry, MultilinearGeometry
from repro.mangll.mesh import build_mesh
from repro.p4est.balance import is_balanced
from repro.p4est.builders import brick_2d, unit_square
from repro.p4est.forest import Forest
from repro.parallel import Sanitize, SerialComm
from tests.parallel.helpers import run as spmd


def test_adapt_refines_and_transfers():
    conn = unit_square()
    comm = SerialComm()
    forest = Forest.new(conn, comm, level=2)
    geo = MultilinearGeometry(conn)
    mesh = build_mesh(forest, geo, 2)
    f = lambda x: x[..., 0] ** 2 + x[..., 1]
    q = f(mesh.coords[: mesh.nelem_local])
    refine = forest.local.x < forest.D.root_len // 2
    result, (q2,) = adapt_and_rebalance(
        forest, refine, fields=[q], degree=2
    )
    assert result.refined > 0 and result.coarsened == 0
    assert result.elements_after > result.elements_before
    assert is_balanced(forest)
    mesh2 = build_mesh(forest, geo, 2)
    np.testing.assert_allclose(q2, f(mesh2.coords[: mesh2.nelem_local]), atol=1e-11)


def test_adapt_coarsens():
    conn = unit_square()
    forest = Forest.new(conn, SerialComm(), level=3)
    n0 = forest.global_count
    refine = np.zeros(forest.local_count, dtype=bool)
    coarsen = np.ones(forest.local_count, dtype=bool)
    result, _ = adapt_and_rebalance(forest, refine, coarsen)
    assert result.coarsened > 0
    assert forest.global_count < n0


def test_refine_wins_over_coarsen():
    conn = unit_square()
    forest = Forest.new(conn, SerialComm(), level=2)
    both = np.ones(forest.local_count, dtype=bool)
    result, _ = adapt_and_rebalance(forest, both, both)
    # Everything marked both ways: refinement wins, nothing coarsens.
    assert result.refined == 16
    assert result.coarsened == 0


def test_min_max_level_respected():
    conn = unit_square()
    forest = Forest.new(conn, SerialComm(), level=1)
    refine = np.ones(forest.local_count, dtype=bool)
    adapt_and_rebalance(forest, refine, max_level=2)
    assert forest.local.level.max() == 2
    # min_level forces refinement even with nothing marked.
    forest2 = Forest.new(conn, SerialComm(), level=1)
    adapt_and_rebalance(
        forest2, np.zeros(forest2.local_count, dtype=bool), min_level=2
    )
    assert forest2.local.level.min() >= 2


@pytest.mark.parametrize("size", [2, 4])
def test_adapt_parallel_consistency(size):
    conn = brick_2d(2, 1)

    def prog(comm):
        forest = Forest.new(conn, comm, level=2)
        geo = MultilinearGeometry(conn)
        mesh = build_mesh(forest, geo, 1)
        q = mesh.coords[: mesh.nelem_local, :, 0]
        refine = forest.local.tree == 0
        result, (q2,) = adapt_and_rebalance(forest, refine, fields=[q], degree=1)
        forest.validate()
        mesh2 = build_mesh(forest, geo, 1)
        np.testing.assert_allclose(
            q2, mesh2.coords[: mesh2.nelem_local, :, 0], atol=1e-12
        )
        return forest.global_count

    out = spmd(size, prog)
    assert len(set(out)) == 1


def test_adapt_coarsen_is_collective_with_rank_local_candidates():
    """Regression: coarsening was gated on the LOCAL mask having any
    candidates, so ranks whose segment held none skipped the collective
    count refresh inside ``Forest.coarsen`` and the SPMD collective
    sequences diverged (first bites at 5+ ranks; caught by the
    sanitizer).  The adapt cycle must stay collective-uniform even when
    only one rank has coarsen work."""

    def prog(comm):
        conn = unit_square()
        forest = Forest.new(conn, comm, level=3)
        quarter = forest.D.root_len // 4
        coarsen = (forest.local.x < quarter) & (forest.local.y < quarter)
        refine = np.zeros(forest.local_count, dtype=bool)
        result, _ = adapt_and_rebalance(forest, refine, coarsen)
        forest.validate()
        return result.coarsened

    out = spmd(5, prog, layers=[Sanitize()])
    assert len(set(out)) == 1
    assert out[0] > 0


def test_gradient_indicator_flags_steep_elements():
    conn = unit_square()
    forest = Forest.new(conn, SerialComm(), level=3)
    geo = MultilinearGeometry(conn)
    mesh = build_mesh(forest, geo, 2)
    x = mesh.coords[: mesh.nelem_local]
    q = np.tanh(40 * (x[..., 0] - 0.5))
    ind = gradient_indicator(mesh, q)
    steep = np.abs(x[..., 0] - 0.5).min(axis=1) < 0.1
    assert ind[steep].min() > ind[~steep].max()


def test_gradient_indicator_zero_for_constant():
    conn = unit_square()
    forest = Forest.new(conn, SerialComm(), level=2)
    mesh = build_mesh(forest, MultilinearGeometry(conn), 1)
    q = np.full((mesh.nelem_local, mesh.npts), 3.14)
    np.testing.assert_allclose(gradient_indicator(mesh, q), 0.0, atol=1e-12)


def test_value_range_indicator():
    conn = unit_square()
    forest = Forest.new(conn, SerialComm(), level=2)
    mesh = build_mesh(forest, MultilinearGeometry(conn), 1)
    q = mesh.coords[: mesh.nelem_local, :, 0]
    ind = value_range_indicator(mesh, q)
    np.testing.assert_allclose(ind, 0.25, atol=1e-12)  # h per element


def test_feature_distance_indicator_peaks_on_feature():
    conn = unit_square()
    forest = Forest.new(conn, SerialComm(), level=3)
    mesh = build_mesh(forest, MultilinearGeometry(conn), 1)

    def dist(x):
        return x[..., 0] - 0.5  # vertical front at x = 0.5

    ind = feature_distance_indicator(mesh, dist)
    x = mesh.coords[: mesh.nelem_local]
    on_front = np.abs(x[..., 0] - 0.5).min(axis=1) < 1e-12
    assert ind[on_front].min() > 0.99
    assert ind[~on_front].max() < 0.7


@pytest.mark.parametrize("size", [1, 3])
def test_mark_fixed_fraction(size):
    def prog(comm):
        rng = np.random.default_rng(42 + comm.rank)
        ind = rng.random(100)
        ref, coar = mark_fixed_fraction(ind, comm, 0.1, 0.2)
        from repro.parallel.ops import SUM

        nref = comm.allreduce(int(ref.sum()), SUM)
        ncoar = comm.allreduce(int(coar.sum()), SUM)
        total = comm.allreduce(100, SUM)
        return nref / total, ncoar / total

    for fr, fc in spmd(size, prog):
        assert 0.05 <= fr <= 0.2
        assert 0.1 <= fc <= 0.3


def test_mark_fixed_fraction_constant_indicator():
    comm = SerialComm()
    ref, coar = mark_fixed_fraction(np.ones(50), comm)
    assert not ref.any() and not coar.any()


def test_adapt_cycle_with_checkpoint_policy():
    from repro.amr.driver import CheckpointPolicy
    from repro.p4est import checkpoint as forest_checkpoint

    conn = unit_square()
    comm = SerialComm()
    forest = Forest.new(conn, comm, level=2)
    geo = MultilinearGeometry(conn)
    mesh = build_mesh(forest, geo, 1)
    q = mesh.coords[: mesh.nelem_local, :, 0].copy()

    policy = CheckpointPolicy(every=2)
    for cycle in range(4):
        refine = forest.local.level < 3 if cycle == 0 else np.zeros(
            forest.local_count, dtype=bool
        )
        _, (q,) = adapt_and_rebalance(
            forest,
            refine,
            fields=[q],
            degree=1,
            checkpoint=policy,
            checkpoint_meta={"cycle": cycle},
        )
    # every=2 over 4 cycles -> 2 snapshots, the last one current.
    assert policy.cycles == 4
    assert policy.store.saves == 2
    ckpt = policy.store.load()
    assert ckpt.global_octants == forest.global_count
    assert ckpt.meta == {"cycle": 3}
    restored, fields, _ = forest_checkpoint.restore(conn, comm, ckpt)
    restored.validate()
    assert restored.checksum() == forest.checksum()
    np.testing.assert_array_equal(fields["field0"], q)


def test_checkpoint_policy_due_matches_after_adapt():
    from repro.amr.driver import CheckpointPolicy

    conn = unit_square()
    comm = SerialComm()
    forest = Forest.new(conn, comm, level=1)
    policy = CheckpointPolicy(every=3)
    fired = []
    for _ in range(6):
        expect = policy.due()
        fired.append(policy.after_adapt(forest))
        assert fired[-1] == expect
    assert fired == [False, False, True, False, False, True]
    assert CheckpointPolicy(every=0).due() is False

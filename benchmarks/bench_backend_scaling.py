"""Thread vs process backend scaling on the advection driver.

Runs the dynamically adapted advection workload under both execution
backends at P in {1, 2, 4, 8} ranks and records wall-clock seconds and
the process/thread ratio into ``bench_results/backend_scaling.txt``.

Honesty note: this is a *backend overhead* measurement, not a parallel
speedup claim.  The thread backend can never exceed 1 core (the GIL
serialises rank compute); the process backend can use real cores — but
only as many as the host exposes, which the emitted table states.  On a
single-core host expect the process backend to trail threads by its
spawn/IPC overhead at every P; the interesting number is how small that
overhead stays as P grows.
"""

import os
import time

from benchmarks._util import emit
from repro.apps.advection.driver import AdvectionConfig, AdvectionRun
from repro.parallel import Machine, MemoryCheckpointStore, RunConfig
from repro.perf.model import format_table

SIZES = [1, 2, 4, 8]
NSTEPS = 8

CONFIG = AdvectionConfig(degree=2, base_level=2, max_level=3, adapt_every=4)


def _advect(comm):
    run = AdvectionRun.from_store(comm, MemoryCheckpointStore(), CONFIG)
    run.run(NSTEPS)
    return run.l2_error(), run.global_elements()


def _time_backend(backend: str, size: int) -> float:
    cfg = RunConfig(size=size, backend=backend, start_method="fork", timeout=600.0)
    t0 = time.perf_counter()
    result = Machine(cfg).run(_advect)
    seconds = time.perf_counter() - t0
    # All ranks agree on the global diagnostics: the workload really ran.
    assert len(set(result.values)) == 1
    return seconds


def test_backend_scaling_table():
    cores = os.cpu_count() or 1
    rows = []
    for size in SIZES:
        t_thread = _time_backend("thread", size)
        t_process = _time_backend("process", size)
        rows.append(
            [
                size,
                round(t_thread, 3),
                round(t_process, 3),
                round(t_thread / t_process, 2),
            ]
        )
    table = format_table(
        ["ranks", "thread (s)", "process (s)", "speedup (thread/process)"], rows
    )
    emit(
        "backend_scaling",
        "\n".join(
            [
                f"Advection driver, degree={CONFIG.degree}, "
                f"base_level={CONFIG.base_level}, "
                f"max_level={CONFIG.max_level}, {NSTEPS} steps, "
                f"adapt every {CONFIG.adapt_every}.",
                f"Host exposes {cores} CPU core(s); the thread backend is "
                "GIL-bound to 1 core, the process backend can use up to "
                f"{cores}.  Speedup > 1 means processes beat threads; on a "
                "1-core host values <= 1 are expected (pure backend overhead).",
                "",
                table,
            ]
        ),
    )
    assert all(row[1] > 0 and row[2] > 0 for row in rows)


if __name__ == "__main__":
    test_backend_scaling_table()

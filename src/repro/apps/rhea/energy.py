"""SUPG-stabilized energy transport for the Boussinesq system.

The energy equation (2c) is advection-dominated; the paper stabilizes it
with the streamline-upwind Petrov-Galerkin scheme and integrates it
explicitly, decoupling the temperature update from the nonlinear Stokes
solve.  This module provides one explicit SUPG step on the Q1 cG space:

    T <- T + dt M_L^{-1} [ -(C(v) + S(v)) T - kappa K T + (phi + tau
         v.grad phi) H ]

with C the advection operator, S the SUPG term tau (v.grad phi_i)
(v.grad phi_j), K the diffusion stiffness, M_L the lumped mass, and
tau = h / (2 |v|) elementwise.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.mangll.cgops import CGSpace


def supg_energy_rhs(
    cgs: CGSpace,
    T: np.ndarray,
    u: np.ndarray,
    kappa: float,
    source: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Assembled SUPG right-hand side divided by the lumped mass.

    ``T`` (nloc,) nodal temperature; ``u`` (nloc, dim) nodal velocity;
    ``source`` optional nodal heat production.  Returns dT/dt (nloc,).
    Collective (one reverse-add scatter pair).
    """
    from repro.apps.rhea.stokes import StokesProblem

    d = cgs.dim
    nl = cgs.mesh.nelem_local
    npts = cgs.npts
    sp_helper = StokesProblem(cgs)
    PG, wdet = sp_helper._physical_gradients()
    en = cgs.ln.element_nodes

    h = cgs.mesh.element_volumes()[:nl] ** (1.0 / d)
    rhs = np.zeros(cgs.ln.num_local_nodes)
    mass = np.zeros(cgs.ln.num_local_nodes)
    for e in range(nl):
        R = cgs.element_R(e)
        Te = R @ T[en[e]]
        ue = R @ u[en[e]]
        gradT = np.einsum("qjc,j->qc", PG[e], Te)
        adv = np.einsum("qc,qc->q", ue, gradT)  # v . grad T at nodes
        speed = np.linalg.norm(ue, axis=1)
        tau = h[e] / np.maximum(2.0 * speed, 1e-12)
        tau = np.where(speed > 1e-10, tau, 0.0)
        src = R @ source[en[e]] if source is not None else 0.0
        resid = adv - src
        # Galerkin advection + source (collocated) ...
        re = -wdet[e] * resid
        # ... SUPG streamline term ...
        vgphi = np.einsum("qc,qjc->qj", ue, PG[e])  # v.grad phi_j at q
        re -= vgphi.T @ (wdet[e] * tau * resid)
        # ... and diffusion (integrated by parts).
        re -= kappa * np.einsum("qjc,qc->j", PG[e], wdet[e][:, None] * gradT)
        np.add.at(rhs, en[e], R.T @ re)
        np.add.at(mass, en[e], R.T @ wdet[e])

    rhs = cgs.ln.scatter_reverse_add(cgs.comm, rhs)
    mass = cgs.ln.scatter_reverse_add(cgs.comm, mass)
    return rhs / np.maximum(mass, 1e-300)


def stable_energy_dt(cgs: CGSpace, u: np.ndarray, kappa: float, cfl: float = 0.4) -> float:
    """Advective/diffusive explicit step bound."""
    from repro.parallel.ops import MIN

    d = cgs.dim
    nl = cgs.mesh.nelem_local
    h = cgs.mesh.element_volumes()[:nl] ** (1.0 / d)
    en = cgs.ln.element_nodes
    speed = np.linalg.norm(u, axis=1)
    smax = np.array([speed[en[e]].max() for e in range(nl)]) if nl else np.array([0.0])
    dt_adv = h / np.maximum(smax, 1e-12)
    dt_diff = h**2 / max(4.0 * kappa, 1e-300)
    local = float(min(dt_adv.min(), dt_diff.min())) if nl else np.inf
    return cfl * float(cgs.comm.allreduce(local, MIN))

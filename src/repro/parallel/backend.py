"""Execution backends for the SPMD machine.

The paper's algorithms are backend-agnostic: a rank program talks only to
its :class:`~repro.parallel.comm.Comm`.  This module defines the contract
an execution backend fulfils to run ``P`` such programs concurrently:

* :class:`MeteredComm` — the shared *collective frontend*.  Every
  collective's argument validation, :class:`~repro.parallel.stats.CommStats`
  metering, and combine logic live here, implemented over two abstract
  transport primitives (:meth:`MeteredComm._wait` and
  :meth:`MeteredComm._collect`).  Because both the thread and the process
  backend reuse this frontend verbatim, message and byte accounting is
  byte-exact across backends *by construction*.
* :class:`Backend` — one launch strategy.  ``run_attempt`` executes a
  single attempt of ``size`` ranks and reports outcomes or the first
  failure; the retry loop of resilient runs lives above it in
  :mod:`repro.parallel.run`.
* :func:`get_backend` — the registry mapping ``"thread"`` /
  ``"process"`` to :class:`~repro.parallel.machine.ThreadBackend` and
  :class:`~repro.parallel.process_backend.ProcessBackend`.

:class:`SpmdError`, :class:`RankOutcome` and :class:`SpmdReport` are
defined here because every backend produces them; the historical import
paths in :mod:`repro.parallel.machine` re-export them unchanged.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.parallel.comm import Comm
from repro.parallel.ops import SUM, ReduceOp, identity_for, payload_nbytes
from repro.parallel.stats import CommStats

MAX_RANKS = 1024

#: Names of the supported execution backends, in documentation order.
BACKENDS = ("thread", "process")


class SpmdError(RuntimeError):
    """Raised on all surviving ranks when a peer rank fails.

    ``failed_rank`` is the lowest rank whose own exception (not a
    cascaded abort) brought the run down, or ``None`` when unknown.
    """

    def __init__(self, message: str, failed_rank: Optional[int] = None) -> None:
        """Record the message and the first failed rank (if attributable)."""
        super().__init__(message)
        self.failed_rank = failed_rank

    def __reduce__(self) -> Tuple[Any, ...]:
        """Pickle support: carry ``failed_rank`` and the chained cause.

        Exceptions lose ``__cause__`` under default pickling; ship it as
        state so a worker-side ``raise ... from exc`` survives the trip
        through the pipe (the parent re-raises with the true cause).
        """
        return (
            type(self),
            (self.args[0] if self.args else "", self.failed_rank),
            {"__cause__": self.__cause__},
        )

    def __setstate__(self, state: Dict[str, Any]) -> None:
        """Restore the chained cause recorded by :meth:`__reduce__`."""
        self.__cause__ = state.get("__cause__")


class MeteredComm(Comm):
    """Collective frontend shared by every multi-rank backend.

    Subclasses provide the transport: :meth:`_wait` synchronizes all
    ranks once, :meth:`_collect` runs one two-phase collective (deposit a
    contribution, combine the full slot list, read the result).  The
    frontend performs all argument validation and meters every operation
    into :attr:`stats` with identical message/byte arithmetic regardless
    of transport, so :class:`~repro.parallel.stats.CommStats` compare
    equal between backends for the same program.

    ``compute_seconds`` accumulates this rank's CPU time spent *outside*
    communication (measured with ``time.thread_time`` so blocked waits
    do not count), exactly as the original thread machine did.
    """

    def __init__(self, rank: int, size: int) -> None:
        """Initialize metering state for ``rank`` of a ``size``-rank run."""
        self.rank = rank
        self.size = size
        self.stats = CommStats()
        self.compute_seconds = 0.0
        self._mark = time.thread_time()

    # Transport primitives (subclass responsibility) -----------------------

    @abstractmethod
    def _wait(self) -> int:
        """One synchronization round; returns 0 on exactly one rank."""

    @abstractmethod
    def _collect(self, contribution: Any, combine: Callable[[List[Any]], Any]) -> Any:
        """Two-phase collective: deposit, combine the slot list, read."""

    # Internal machinery ---------------------------------------------------

    def _begin(self) -> None:
        """Flush compute time accumulated since the last operation ended."""
        now = time.thread_time()
        self.compute_seconds += now - self._mark

    def _end(self) -> None:
        """Restart the compute clock as an operation returns."""
        self._mark = time.thread_time()

    def _check_root(self, root: int) -> None:
        """Validate a collective's root rank."""
        if not 0 <= root < self.size:
            raise ValueError(f"root {root} out of range for size-{self.size} comm")

    # Collectives ----------------------------------------------------------

    def barrier(self) -> None:
        """Block until every rank has entered the barrier."""
        self._begin()
        self.stats.record("barrier", 0, 0)
        self._wait()
        self._wait()
        self._end()

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Broadcast ``obj`` from ``root``; every rank returns root's value."""
        self._begin()
        self._check_root(root)
        sent = payload_nbytes(obj) if self.rank == root else 0
        self.stats.record("bcast", self.size - 1 if self.rank == root else 0, sent)
        result = self._collect(obj if self.rank == root else None, lambda slots: slots[root])
        self._end()
        return result

    def gather(self, obj: Any, root: int = 0) -> Optional[List[Any]]:
        """Gather one value per rank; ``root`` returns the list, others ``None``."""
        self._begin()
        self._check_root(root)
        self.stats.record("gather", 0 if self.rank == root else 1, payload_nbytes(obj))
        result = self._collect(obj, list)
        self._end()
        return result if self.rank == root else None

    def scatter(self, objs: Optional[List[Any]], root: int = 0) -> Any:
        """Scatter ``objs[r]`` (given at ``root``) to each rank ``r``."""
        self._begin()
        self._check_root(root)
        if self.rank == root:
            if objs is None or len(objs) != self.size:
                raise ValueError("scatter requires a list of one value per rank at root")
            sent = sum(payload_nbytes(o) for i, o in enumerate(objs) if i != root)
            self.stats.record("scatter", self.size - 1, sent)
        else:
            self.stats.record("scatter", 0, 0)
        result = self._collect(objs if self.rank == root else None, lambda slots: slots[root])
        self._end()
        return result[self.rank]

    def allgather(self, obj: Any) -> List[Any]:
        """Gather one value per rank and return the full list on every rank."""
        self._begin()
        self.stats.record("allgather", self.size - 1, payload_nbytes(obj))
        result = self._collect(obj, list)
        self._end()
        return list(result)

    def allreduce(self, value: Any, op: ReduceOp = SUM) -> Any:
        """Reduce ``value`` over all ranks with ``op``; result on every rank."""
        self._begin()
        self.stats.record("allreduce", self.size - 1, payload_nbytes(value))

        def combine(slots: List[Any]) -> Any:
            """Left-fold the per-rank contributions with ``op``."""
            acc = slots[0]
            for v in slots[1:]:
                acc = op(acc, v)
            return acc

        result = self._collect(value, combine)
        self._end()
        return result

    def exscan(self, value: Any, op: ReduceOp = SUM) -> Any:
        """Exclusive prefix reduction: rank r gets op-fold of ranks 0..r-1."""
        self._begin()
        self.stats.record("exscan", 1, payload_nbytes(value))

        def combine(slots: List[Any]) -> List[Any]:
            """Exclusive prefix folds, one slot per rank."""
            prefixes = [identity_for(op, slots[0])]
            acc = slots[0]
            for v in slots[1:]:
                prefixes.append(acc)
                acc = op(acc, v)
            return prefixes

        result = self._collect(value, combine)
        self._end()
        return result[self.rank]

    def scan(self, value: Any, op: ReduceOp = SUM) -> Any:
        """Inclusive prefix reduction: rank r gets op-fold of ranks 0..r."""
        self._begin()
        self.stats.record("scan", 1, payload_nbytes(value))

        def combine(slots: List[Any]) -> List[Any]:
            """Inclusive prefix folds, one slot per rank."""
            prefixes = []
            acc = None
            for i, v in enumerate(slots):
                acc = v if i == 0 else op(acc, v)
                prefixes.append(acc)
            return prefixes

        result = self._collect(value, combine)
        self._end()
        return result[self.rank]

    def alltoall(self, objs: List[Any]) -> List[Any]:
        """Dense personalized exchange: send ``objs[r]`` to rank r."""
        self._begin()
        if len(objs) != self.size:
            raise ValueError("alltoall requires one value per destination rank")
        sent = sum(payload_nbytes(o) for i, o in enumerate(objs) if i != self.rank)
        self.stats.record("alltoall", self.size - 1, sent)
        result = self._collect(list(objs), lambda slots: slots)
        received = [result[src][self.rank] for src in range(self.size)]
        self._end()
        return received

    def exchange(self, outbox: Dict[int, Any]) -> Dict[int, Any]:
        """Sparse personalized exchange (the workhorse of the forest code)."""
        self._begin()
        for dest in outbox:
            if not 0 <= dest < self.size:
                raise ValueError(f"exchange destination {dest} out of range")
        nmsg = sum(1 for d in outbox if d != self.rank)
        nbytes = sum(payload_nbytes(v) for d, v in outbox.items() if d != self.rank)
        self.stats.record("exchange", nmsg, nbytes)
        all_outboxes = self._collect(dict(outbox), lambda slots: slots)
        inbox = {
            src: all_outboxes[src][self.rank]
            for src in range(self.size)
            if self.rank in all_outboxes[src]
        }
        self._end()
        return inbox


@dataclass
class RankOutcome:
    """Result and metering for one rank of an SPMD run."""

    value: Any
    stats: CommStats
    compute_seconds: float
    trace: Any = None  # TraceReport when the run was traced


@dataclass
class SpmdReport:
    """Everything a detailed SPMD run learned about its successful attempt."""

    outcomes: List[RankOutcome]
    wall_seconds: float

    @property
    def values(self) -> List[Any]:
        """Per-rank return values, indexed by rank."""
        return [o.value for o in self.outcomes]

    @property
    def max_compute_seconds(self) -> float:
        """Largest per-rank compute time (the critical path's lower bound)."""
        return max(o.compute_seconds for o in self.outcomes)

    def merged_stats(self) -> CommStats:
        """All ranks' communication counters accumulated into one table."""
        merged = CommStats()
        for o in self.outcomes:
            merged.merge(o.stats)
        return merged

    @property
    def trace_reports(self) -> List[Any]:
        """Per-rank :class:`~repro.trace.tracer.TraceReport`s (traced runs)."""
        return [o.trace for o in self.outcomes if o.trace is not None]

    def profile(self, wall_seconds: Optional[float] = None) -> Any:
        """Merge the per-rank traces into a :class:`~repro.trace.RunProfile`.

        Raises :class:`ValueError` when the run was not traced (enable
        with ``RunConfig(layers=[Trace()])``).
        """
        reports = self.trace_reports
        if not reports:
            raise ValueError("run was not traced; use RunConfig(layers=[Trace()])")
        from repro.trace.profile import RunProfile

        if wall_seconds is None:
            wall_seconds = self.wall_seconds
        return RunProfile.from_reports(reports, wall_seconds=wall_seconds)


@dataclass
class AttemptRequest:
    """One launch of ``size`` ranks, as handed to a :class:`Backend`.

    ``layers`` is the normalized decorator stack (see
    :mod:`repro.parallel.layers`); ``attempt`` is the zero-based retry
    index of resilient runs (plain runs always pass 0).  ``store``, when
    not ``None``, is the run's checkpoint store; the backend injects it
    (or a cross-process proxy for it) as the rank program's first
    argument after the communicator.  ``timeout`` arms every blocking
    collective wait; ``None`` falls back to the watchdog layer's timeout
    when one is configured, else waits indefinitely.
    ``max_replacements`` is this attempt's budget of in-place worker
    respawns (process backend; other backends ignore it).
    """

    size: int
    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    layers: Tuple[Any, ...] = ()
    attempt: int = 0
    timeout: Optional[float] = None
    store: Any = None
    max_replacements: int = 0

    def __post_init__(self) -> None:
        """Validate the rank count against the machine-wide cap."""
        if not 1 <= self.size <= MAX_RANKS:
            raise ValueError(f"size must be in [1, {MAX_RANKS}], got {self.size}")


@dataclass
class AttemptResult:
    """What one :meth:`Backend.run_attempt` launch produced.

    Exactly one of two shapes: a success has every entry of ``outcomes``
    filled and no ``failure``; a failed attempt carries the lowest-rank
    primary ``failure`` (plus ``failed_rank``), whatever traffic the
    doomed ranks performed (``lost_stats``), and the flight-recorder
    ``artifact`` when a watchdog dumped one.

    Either shape may additionally record *in-place replacements* (process
    backend with a ``max_replacements`` budget): workers that died and
    were respawned without tearing the attempt down.  A successful
    attempt with replacements still fills every outcome; its
    ``lost_stats`` then carries the traffic rolled back during recovery.
    """

    outcomes: List[Optional[RankOutcome]]
    wall_seconds: float
    failed_rank: Optional[int] = None
    failure: Optional[BaseException] = None
    artifact: Optional[str] = None
    lost_stats: CommStats = field(default_factory=CommStats)
    replacements: int = 0
    replaced_ranks: List[int] = field(default_factory=list)
    replacement_seconds: float = 0.0
    replacement_artifacts: List[str] = field(default_factory=list)
    replacement_failures: List[str] = field(default_factory=list)

    @property
    def failed(self) -> bool:
        """Whether any rank failed (the attempt produced no report)."""
        return self.failure is not None or self.failed_rank is not None

    def report(self) -> SpmdReport:
        """The successful attempt's :class:`SpmdReport`."""
        assert all(o is not None for o in self.outcomes)
        return SpmdReport(
            [o for o in self.outcomes if o is not None], self.wall_seconds
        )

    def raise_failure(self) -> None:
        """Re-raise the recorded failure, naming the first failed rank.

        When a flight recorder was dumped for this attempt, its artifact
        path is chained into the message so a post-mortem never starts
        from a bare traceback.
        """
        rank = self.failed_rank
        exc = self.failure
        assert exc is not None
        if isinstance(exc, SpmdError):
            raise exc
        message = f"SPMD run failed on rank {rank}: {exc!r}"
        if self.artifact is not None and self.artifact not in message:
            message += f" [flight recorder: {self.artifact}]"
        raise SpmdError(message, failed_rank=rank) from exc


class Backend(ABC):
    """One strategy for executing the ranks of an SPMD attempt.

    Backends guarantee identical *semantics*: the same rank program with
    the same inputs produces the same per-rank values and byte-exact
    :class:`~repro.parallel.stats.CommStats` on any backend (only wall
    time differs).  The decorator stack of
    :mod:`repro.parallel.layers` composes identically over either.
    """

    #: Registry name of the backend (``"thread"`` or ``"process"``).
    name: str = ""

    @abstractmethod
    def run_attempt(self, request: AttemptRequest) -> AttemptResult:
        """Execute one attempt of ``request.size`` ranks to completion."""

    def close(self) -> None:
        """Release any long-lived resources the backend holds.

        The thread backend holds none, so this default is a no-op.  The
        process backend overrides it to retire its warm worker pool (see
        ``ProcessBackend(persistent=True)``).  Safe to call repeatedly;
        a closed backend may still run attempts (it simply cold-starts).
        """

    def __enter__(self) -> "Backend":
        """Support ``with get_backend(...) as backend:`` lifecycles."""
        return self

    def __exit__(self, *exc: Any) -> None:
        """Close on scope exit."""
        self.close()


def effective_timeout(request: AttemptRequest) -> Optional[float]:
    """The barrier-wait timeout for an attempt.

    An explicit ``request.timeout`` wins; otherwise a configured watchdog
    layer supplies its own timeout; otherwise waits are unbounded.
    """
    if request.timeout is not None:
        return request.timeout
    from repro.parallel.layers import find_layer

    wd = find_layer(request.layers, "watchdog")
    if wd is not None:
        return wd.watchdog.timeout
    return None


def get_backend(name: str, **options: Any) -> Backend:
    """Resolve a backend by registry name.

    ``options`` are forwarded to the backend constructor (the process
    backend accepts ``start_method``, ``shm_threshold_bytes``, and
    ``persistent``; the thread backend takes none).  Unknown names raise
    :class:`ValueError`.
    """
    if name == "thread":
        from repro.parallel.machine import ThreadBackend

        return ThreadBackend(**options)
    if name == "process":
        from repro.parallel.process_backend import ProcessBackend

        return ProcessBackend(**options)
    raise ValueError(f"unknown backend {name!r}; expected one of {BACKENDS}")

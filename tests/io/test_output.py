"""Tests for VTK and SVG output."""

import os

import numpy as np
import pytest

from repro.io.svg import draw_forest_svg
from repro.io.vtk import write_vtk
from repro.mangll.geometry import MoebiusGeometry, MultilinearGeometry, ShellGeometry
from repro.p4est.builders import moebius, shell, unit_square
from repro.p4est.forest import Forest
from repro.parallel import SerialComm
from tests.parallel.helpers import run as spmd


def test_vtk_2d(tmp_path):
    conn = unit_square()
    forest = Forest.new(conn, SerialComm(), level=2)
    path = str(tmp_path / "square.vtk")
    out = write_vtk(path, forest, MultilinearGeometry(conn))
    assert out == path
    text = open(path).read()
    assert "UNSTRUCTURED_GRID" in text
    assert f"CELLS {forest.global_count}" in text
    assert "SCALARS level" in text
    assert "SCALARS mpirank" in text


def test_vtk_3d_shell_with_data(tmp_path):
    conn = shell()
    forest = Forest.new(conn, SerialComm(), level=1)
    path = str(tmp_path / "shell.vtk")
    write_vtk(
        path,
        forest,
        ShellGeometry(),
        cell_data={"radius": np.linspace(0, 1, forest.local_count)},
    )
    text = open(path).read()
    assert "SCALARS radius" in text
    assert "CELL_TYPES 192" in text


def test_vtk_parallel_gather(tmp_path):
    conn = unit_square()
    path = str(tmp_path / "par.vtk")

    def prog(comm):
        forest = Forest.new(conn, comm, level=2)
        return write_vtk(path, forest, MultilinearGeometry(conn))

    out = spmd(3, prog)
    assert out[0] == path and out[1] is None
    assert "CELLS 16" in open(path).read()


def test_vtk_per_rank_files(tmp_path):
    conn = unit_square()
    base = str(tmp_path / "pieces.vtk")

    def prog(comm):
        forest = Forest.new(conn, comm, level=2)
        return write_vtk(base, forest, MultilinearGeometry(conn), gather=False)

    outs = spmd(2, prog)
    assert all(os.path.exists(o) for o in outs)
    assert outs[0] != outs[1]


def test_svg_moebius(tmp_path):
    conn = moebius()
    path = str(tmp_path / "moebius.svg")

    def prog(comm):
        forest = Forest.new(conn, comm, level=2)
        return draw_forest_svg(path, forest, MoebiusGeometry())

    out = spmd(3, prog)
    assert out[0] == path
    text = open(path).read()
    assert text.count("<polygon") == 5 * 16
    assert "<path" in text  # the space-filling curve overlay


def test_svg_rejects_3d(tmp_path):
    conn = shell()
    forest = Forest.new(conn, SerialComm(), level=0)
    with pytest.raises(ValueError):
        draw_forest_svg(str(tmp_path / "x.svg"), forest, ShellGeometry())

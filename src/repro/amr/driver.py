"""The adapt cycle: mark -> coarsen/refine -> balance -> transfer -> partition.

One call to :func:`adapt_and_rebalance` performs the complete dynamic
adaptation step of the paper's applications, carrying any number of
per-element nodal fields to the new mesh and partition.  Refinement wins
over coarsening where both are marked; coarsening happens only for
complete local families with every sibling marked (the ``Coarsen``
semantics), and 2:1 balance may veto coarsening simply by re-refining.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.mangll.op import transfer_fields
from repro.p4est import checkpoint as forest_checkpoint
from repro.p4est.balance import balance
from repro.p4est.forest import Forest
from repro.parallel.collectives import collective
from repro.parallel.machine import CheckpointStore, MemoryCheckpointStore


@dataclass
class AdaptResult:
    """Statistics of one adapt cycle (globally reduced)."""

    refined: int
    coarsened: int
    balance_rounds: int
    moved: int
    elements_before: int
    elements_after: int


@dataclass
class CheckpointPolicy:
    """Periodic forest checkpointing driven by adapt cycles.

    Owns its cycle counter so any driver loop can call
    :meth:`after_adapt` once per cycle; every ``every``-th call snapshots
    the forest (plus per-element fields and app ``meta``) into ``store``
    via partition-independent :func:`repro.p4est.checkpoint.save`.  The
    store outlives the rank threads (or worker processes), which is
    what makes recovering runs (``RunConfig(recover=True)``) possible.
    """

    store: CheckpointStore = field(default_factory=MemoryCheckpointStore)
    every: int = 1
    root: int = 0
    cycles: int = 0

    def due(self) -> bool:
        """Whether the next :meth:`after_adapt` call will checkpoint."""
        return self.every > 0 and (self.cycles + 1) % self.every == 0

    @collective("method", "after_adapt")
    def after_adapt(
        self,
        forest: Forest,
        fields: Optional[Dict[str, np.ndarray]] = None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> bool:
        """Count one adapt cycle; checkpoint if due.  Collective."""
        self.cycles += 1
        if self.every <= 0 or self.cycles % self.every:
            return False
        ckpt = forest_checkpoint.save(forest, fields=fields, meta=meta, root=self.root)
        self.store.save(ckpt)
        return True


@collective("function", "adapt_and_rebalance")
def adapt_and_rebalance(
    forest: Forest,
    refine_mask: np.ndarray,
    coarsen_mask: Optional[np.ndarray] = None,
    fields: Sequence[np.ndarray] = (),
    degree: int = 1,
    weights_fn=None,
    min_level: int = 0,
    max_level: Optional[int] = None,
    codim: Optional[int] = None,
    checkpoint: Optional[CheckpointPolicy] = None,
    checkpoint_meta: Optional[Dict[str, Any]] = None,
    validate: bool = False,
) -> Tuple[AdaptResult, List[np.ndarray]]:
    """Run one full adapt cycle and return carried fields on the new mesh.

    ``refine_mask`` / ``coarsen_mask`` flag local elements; ``fields`` are
    per-element nodal arrays of the given dG ``degree``.  ``weights_fn``,
    if given, maps the forest to per-element partition weights.  With a
    ``checkpoint`` policy, the adapted forest and carried fields are
    snapshotted into the policy's store when the cycle is due
    (``checkpoint_meta`` rides along for the restart).  With
    ``validate=True``, the distributed forest invariants are checked
    after the cycle via :func:`repro.p4est.validate.validate_forest`,
    raising :class:`~repro.p4est.validate.ForestInvariantError` on any
    corruption (the app drivers expose this as ``validate_every=k``).
    Collective.
    """
    from repro.parallel.ops import SUM

    comm = forest.comm
    n_before = forest.global_count
    old = forest.local.copy()

    refine_mask = np.asarray(refine_mask, dtype=bool)
    if refine_mask.shape != (len(old),):
        raise ValueError("refine_mask has wrong length")
    if coarsen_mask is not None:
        coarsen_mask = np.asarray(coarsen_mask, dtype=bool) & ~refine_mask
        if coarsen_mask.shape != (len(old),):
            raise ValueError("coarsen_mask has wrong length")

    if min_level > 0:
        refine_mask = refine_mask | (forest.local.level < min_level)
    nref = forest.refine(mask=refine_mask, maxlevel=max_level)

    ncoarse = 0
    # Collective-uniform branch: coarsen() refreshes the global counts
    # (an allgather), so every rank must enter whenever any rank could —
    # gating on the local mask being non-empty deadlocks/diverges ranks
    # whose segment happens to hold no coarsen candidates.
    if coarsen_mask is not None:
        # Map the coarsen flags onto the post-refinement array: refined
        # elements are never coarsen candidates, surviving elements keep
        # their flag (found by key lookup).
        from repro.p4est.octant import searchsorted_octants

        pos = searchsorted_octants(forest.local, old, side="left")
        flags = np.zeros(forest.local_count, dtype=bool)
        survived = pos < forest.local_count
        same = np.zeros(len(old), dtype=bool)
        cand = np.minimum(pos, forest.local_count - 1)
        cur = forest.local[cand]
        same = (
            (cur.tree == old.tree)
            & (cur.x == old.x)
            & (cur.y == old.y)
            & (cur.z == old.z)
            & (cur.level == old.level)
        )
        sel = same & coarsen_mask
        flags[cand[sel]] = True
        flags &= forest.local.level > min_level
        ncoarse = forest.coarsen(mask=flags)

    rounds = balance(forest, codim=codim)

    new_fields = [transfer_fields(old, f, forest.local, degree) for f in fields]

    weights = weights_fn(forest) if weights_fn is not None else None
    # Branch on the caller-supplied field list (uniform across ranks),
    # not on the derived per-rank arrays.
    if fields:
        moved, new_fields = forest.partition(weights=weights, carry=new_fields)
    else:
        moved = forest.partition(weights=weights)

    result = AdaptResult(
        refined=int(comm.allreduce(nref, SUM)),
        coarsened=int(comm.allreduce(ncoarse, SUM)),
        balance_rounds=rounds,
        moved=moved,
        elements_before=n_before,
        elements_after=forest.global_count,
    )
    if checkpoint is not None:
        checkpoint.after_adapt(
            forest,
            fields={f"field{i}": arr for i, arr in enumerate(new_fields)},
            meta=checkpoint_meta,
        )
    if validate:
        from repro.p4est.validate import validate_forest

        validate_forest(comm, forest, codim=codim)
    return result, list(new_fields)


@collective("function", "mark_fixed_fraction")
def mark_fixed_fraction(
    indicator: np.ndarray,
    comm,
    refine_fraction: float = 0.1,
    coarsen_fraction: float = 0.1,
) -> Tuple[np.ndarray, np.ndarray]:
    """Global fixed-fraction marking from a per-element indicator.

    Elements above the (1 - refine_fraction) global quantile are marked
    for refinement; those below the coarsen_fraction quantile for
    coarsening.  Quantiles are estimated from a gathered histogram so all
    ranks agree without gathering the raw values.
    """
    from repro.parallel.ops import MAX, MIN, SUM

    lo = comm.allreduce(float(indicator.min()) if len(indicator) else np.inf, MIN)
    hi = comm.allreduce(float(indicator.max()) if len(indicator) else -np.inf, MAX)
    if not np.isfinite(lo) or not np.isfinite(hi) or hi <= lo:
        z = np.zeros(len(indicator), dtype=bool)
        return z, z
    nbins = 256
    edges = np.linspace(lo, hi, nbins + 1)
    hist, _ = np.histogram(indicator, bins=edges)
    hist = np.asarray(comm.allreduce(hist, SUM))
    total = hist.sum()
    cdf = np.cumsum(hist)
    hi_cut = edges[np.searchsorted(cdf, (1 - refine_fraction) * total)]
    lo_cut = edges[min(np.searchsorted(cdf, coarsen_fraction * total) + 1, nbins)]
    return indicator >= hi_cut, indicator <= lo_cut

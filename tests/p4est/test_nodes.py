"""Tests for the Nodes (cG numbering) algorithm.

Independent verification strategy: for uniform meshes the node count has a
closed form; for multi-tree uniform meshes at degree 1 we additionally
dedupe *geometric* corner positions (trilinear map through the tree
vertices) and require the same count — topology vs. geometry must agree.
Hanging meshes are checked against hand-counted configurations and
structural invariants (dependent slots reference coarse neighbor nodes).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.p4est.balance import balance, is_balanced
from repro.p4est.builders import (
    brick_2d,
    brick_3d,
    moebius,
    rotcubes,
    shell,
    unit_cube,
    unit_square,
)
from repro.p4est.forest import Forest
from repro.p4est.ghost import build_ghost
from repro.p4est.nodes import lnodes
from repro.parallel import SerialComm
from tests.parallel.helpers import run as spmd
from repro.parallel.ops import SUM

from tests.p4est.test_forest import fractal_mask


def make_lnodes(conn, comm, level=2, degree=1, refine_fn=None, do_balance=True):
    forest = Forest.new(conn, comm, level=level)
    if refine_fn is not None:
        refine_fn(forest)
    if do_balance:
        balance(forest)
    forest.partition()
    ghost = build_ghost(forest)
    return forest, ghost, lnodes(forest, ghost, degree)


def geometric_corner_count(conn, forest_locals, decimals=8):
    """Reference count of distinct element corner positions (degree 1)."""
    from repro.p4est.forest import octants_from_wire

    pts = set()
    L = conn.D.root_len
    for octs in forest_locals:
        for i in range(len(octs)):
            t = int(octs.tree[i])
            h = int(octs.lens()[i])
            base = np.array([octs.x[i], octs.y[i], octs.z[i]], dtype=float)
            corners = conn.vertices[conn.tree_to_vertex[t]]
            for c in range(conn.D.num_corners):
                off = np.array(
                    [(c >> a) & 1 for a in range(3)], dtype=float
                ) * h
                u = (base + off) / L
                if conn.dim == 2:
                    u[2] = 0.0
                # Multilinear blend of the tree corner vertices.
                p = np.zeros(3)
                for cc in range(conn.D.num_corners):
                    w = 1.0
                    for a in range(conn.dim):
                        b = (cc >> a) & 1
                        w *= u[a] if b else (1.0 - u[a])
                    p += w * corners[cc]
                pts.add(tuple(np.round(p, decimals)))
    return len(pts)


@pytest.mark.parametrize("degree", [1, 2, 3])
@pytest.mark.parametrize("level", [1, 2])
def test_uniform_unit_square_count(degree, level):
    n = 2**level
    _, _, ln = make_lnodes(unit_square(), SerialComm(), level, degree)
    assert ln.global_num_nodes == (degree * n + 1) ** 2
    assert ln.num_owned == ln.global_num_nodes
    assert np.all(ln.hanging_face == -1)


@pytest.mark.parametrize("degree", [1, 2])
def test_uniform_unit_cube_count(degree):
    n = 4
    _, _, ln = make_lnodes(unit_cube(), SerialComm(), 2, degree)
    assert ln.global_num_nodes == (degree * n + 1) ** 3
    assert np.all(ln.hanging_edge == -1)


@pytest.mark.parametrize("degree", [1, 2])
def test_uniform_two_tree_brick(degree):
    level, n = 2, 4
    _, _, ln = make_lnodes(brick_2d(2, 1), SerialComm(), level, degree)
    assert ln.global_num_nodes == (degree * 2 * n + 1) * (degree * n + 1)


def test_uniform_periodic_brick():
    level, n = 2, 4
    _, _, ln = make_lnodes(brick_2d(2, 1, periodic_x=True), SerialComm(), level, 1)
    # Periodic in x: the wrap identifies the two end columns.
    assert ln.global_num_nodes == (2 * n) * (n + 1)


def test_uniform_moebius_count():
    level, n = 2, 4
    _, _, ln = make_lnodes(moebius(), SerialComm(), level, 1)
    # Ring of five trees, one transverse flip: a (5n x n) periodic band.
    assert ln.global_num_nodes == (5 * n) * (n + 1)


@pytest.mark.parametrize("builder", [moebius, rotcubes, shell])
def test_uniform_multitree_matches_geometry(builder):
    conn = builder()
    forest, ghost, ln = make_lnodes(conn, SerialComm(), 1, 1)
    expect = geometric_corner_count(conn, [forest.local])
    assert ln.global_num_nodes == expect


def test_hanging_2d_hand_counted():
    """One level-1 quadrant refined once: 9 coarse nodes + 1 center +
    2 boundary midpoints are independent; the 2 interior hanging
    midpoints are not."""
    conn = unit_square()

    def refine(forest):
        mask = (forest.local.x == 0) & (forest.local.y == 0)
        forest.refine(mask=mask)

    forest, ghost, ln = make_lnodes(conn, SerialComm(), 1, 1, refine)
    assert forest.global_count == 7
    assert ln.global_num_nodes == 12
    # Exactly two elements have one hanging face each... the fine elements
    # adjacent to the two coarse neighbors.
    n_hanging = int((ln.hanging_face >= 0).sum())
    assert n_hanging == 4  # 2 fine elements x 1 face toward each coarse nbr


def test_hanging_slots_reference_coarse_nodes():
    """Slots on a hanging face carry the coarse neighbor's node keys."""
    conn = unit_square()

    def refine(forest):
        mask = (forest.local.x == 0) & (forest.local.y == 0)
        forest.refine(mask=mask)

    forest, ghost, ln = make_lnodes(conn, SerialComm(), 1, 1, refine)
    L = forest.D.root_len
    half = L // 2
    # Find a fine element whose +x face is hanging (toward the coarse
    # right neighbor).
    fine = np.flatnonzero(ln.hanging_face[:, 1] >= 0)
    assert len(fine)
    e = fine[0]
    # Slot order for degree 1: (i, j) -> i + 2j; +x face slots are 1, 3.
    keys = ln.keys[ln.element_nodes[e]]
    for slot in (1, 3):
        k = keys[slot]
        # Parent-grid x coordinate: the coarse face plane at x = L/2.
        assert k[1] == half
        # y on the coarse neighbor's grid: its face corners at 0 and L/2.
        assert k[2] in (0, half)


def test_hanging_3d_hand_counted():
    """One octant of the unit cube refined once (N=1).

    Coarse grid 3^3 = 27 nodes; the refined octant adds its center (1),
    three face centers on the domain boundary (3), and three edge
    midpoints on domain edges (3); interior face/edge midpoints hang.
    """
    conn = unit_cube()

    def refine(forest):
        mask = (forest.local.x == 0) & (forest.local.y == 0) & (forest.local.z == 0)
        forest.refine(mask=mask)

    forest, ghost, ln = make_lnodes(conn, SerialComm(), 1, 1, refine)
    assert forest.global_count == 7 + 8
    assert ln.global_num_nodes == 27 + 1 + 3 + 3


@pytest.mark.parametrize("size", [1, 2, 3, 5])
@pytest.mark.parametrize("degree", [1, 2])
def test_global_count_rank_invariant(size, degree):
    conn = rotcubes()

    def prog(comm):
        forest, ghost, ln = make_lnodes(
            conn,
            comm,
            1,
            degree,
            refine_fn=lambda f: f.refine(
                callback=lambda o: fractal_mask(o, 3), recursive=True
            ),
        )
        assert is_balanced(forest)
        total_owned = comm.allreduce(ln.num_owned, SUM)
        assert total_owned == ln.global_num_nodes
        return ln.global_num_nodes

    reference = spmd(1, prog)[0]
    counts = spmd(size, prog)
    assert counts == [reference] * size


@pytest.mark.parametrize("size", [2, 4])
def test_scatter_forward_propagates_global_ids(size):
    conn = brick_2d(2, 2)

    def prog(comm):
        forest, ghost, ln = make_lnodes(conn, comm, 2, 1)
        vals = np.where(ln.is_owned(), ln.global_ids.astype(float), -1.0)
        filled = ln.scatter_forward(comm, vals)
        np.testing.assert_array_equal(filled, ln.global_ids.astype(float))
        return True

    assert all(spmd(size, prog))


@pytest.mark.parametrize("size", [2, 3])
def test_scatter_reverse_add_counts_sharers(size):
    """Reverse-adding ones counts how many ranks hold each node."""
    conn = brick_2d(2, 1)

    def prog(comm):
        forest, ghost, ln = make_lnodes(conn, comm, 2, 1)
        ones = np.ones(ln.num_local_nodes)
        total = ln.scatter_reverse_add(comm, ones)
        # Every count is at least 1 and at most the rank count.
        assert total.min() >= 1.0
        assert total.max() <= comm.size
        # Consistency: global sum of (count at owned nodes) equals the
        # global number of (rank, node) incidences.
        owned_sum = float(total[ln.is_owned()].sum())
        inc = comm.allreduce(float(ln.num_local_nodes), SUM)
        assert abs(comm.allreduce(owned_sum, SUM) - inc) < 1e-9
        return True

    assert all(spmd(size, prog))


@pytest.mark.parametrize("size", [1, 2, 4])
def test_element_nodes_consistency_across_ranks(size):
    """A nodal field defined by a global function is single-valued:
    evaluating by key on every rank and scattering matches everywhere."""
    conn = brick_2d(2, 1)

    def prog(comm):
        forest, ghost, ln = make_lnodes(conn, comm, 2, 1)
        # Deterministic function of the canonical key.
        key_val = (
            ln.keys[:, 0] * 7.0
            + ln.keys[:, 1] * 1e-6
            + ln.keys[:, 2] * 1e-3
        )
        filled = ln.scatter_forward(comm, key_val)
        np.testing.assert_allclose(filled, key_val)
        return True

    assert all(spmd(size, prog))


def test_degree_validation():
    conn = unit_square()
    forest = Forest.new(conn, SerialComm(), level=1)
    ghost = build_ghost(forest)
    with pytest.raises(ValueError):
        lnodes(forest, ghost, 0)


@settings(max_examples=6, deadline=None)
@given(st.integers(0, 10_000), st.sampled_from([1, 3]), st.sampled_from([1, 2]))
def test_random_adapted_mesh_invariants(seed, size, degree):
    conn = brick_2d(2, 1)

    def prog(comm):
        rng = np.random.default_rng(seed + comm.rank)
        forest = Forest.new(conn, comm, level=2)
        forest.refine(mask=rng.random(forest.local_count) < 0.4)
        balance(forest)
        forest.partition()
        ghost = build_ghost(forest)
        ln = lnodes(forest, ghost, degree)
        # Global ids form a consistent range.
        assert ln.global_ids.min() >= 0
        assert ln.global_ids.max() < ln.global_num_nodes
        assert comm.allreduce(ln.num_owned, SUM) == ln.global_num_nodes
        # Owned nodes numbered within my block.
        mine = ln.global_ids[ln.is_owned()]
        if len(mine):
            assert mine.min() == ln.global_offset
            assert mine.max() == ln.global_offset + ln.num_owned - 1
        # Scatter roundtrip.
        vals = np.where(ln.is_owned(), ln.global_ids.astype(float), -5.0)
        filled = ln.scatter_forward(comm, vals)
        np.testing.assert_array_equal(filled, ln.global_ids.astype(float))
        return ln.global_num_nodes

    counts = spmd(size, prog)
    assert len(set(counts)) == 1


def test_nodes_on_rotated_shell_connection():
    """Inter-tree numbering works across rotated cubed-sphere gluings."""
    conn = shell()
    forest, ghost, ln = make_lnodes(conn, SerialComm(), 1, 2)
    # Geometric reference for degree 1 on the same mesh:
    forest1, ghost1, ln1 = make_lnodes(conn, SerialComm(), 1, 1)
    expect = geometric_corner_count(conn, [forest1.local])
    assert ln1.global_num_nodes == expect
    # Degree-2 count on a uniform hex mesh: V + E + F + C relationships
    # guarantee strictly more nodes than degree 1.
    assert ln.global_num_nodes > ln1.global_num_nodes

"""SVG drawings of 2D forests: elements, partition colors, and the SFC.

Reproduces the visual content of the paper's Fig. 1 (top) and Fig. 2:
leaves colored by owning rank, optionally overlaid with the z-shaped
space-filling curve that the partition cuts into per-rank segments.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.mangll.geometry import Geometry
from repro.p4est.forest import Forest, octants_from_wire, octants_to_wire

_PALETTE = [
    "#4C78A8",
    "#F58518",
    "#54A24B",
    "#E45756",
    "#72B7B2",
    "#EECA3B",
    "#B279A2",
    "#FF9DA6",
]


def draw_forest_svg(
    path: str,
    forest: Forest,
    geometry: Geometry,
    size: int = 640,
    draw_sfc: bool = True,
    stroke: str = "#222222",
) -> Optional[str]:
    """Render the (2D) forest to an SVG file on rank 0.

    Elements are filled by owner rank; ``draw_sfc`` overlays the global
    space-filling curve through element centers.  Returns the path on
    rank 0, None on other ranks.  Collective.
    """
    if forest.dim != 2:
        raise ValueError("SVG drawing supports 2D forests only")
    comm = forest.comm
    wires = comm.gather(octants_to_wire(forest.local))
    if comm.rank != 0:
        return None
    from repro.p4est.octant import Octants

    parts = [octants_from_wire(2, w) for w in wires if len(w)]
    octs = Octants.concat(parts) if parts else forest.local
    owners = np.concatenate(
        [np.full(len(w), r, dtype=int) for r, w in enumerate(wires)]
    )

    L = forest.D.root_len
    n = len(octs)
    h = octs.lens().astype(float)
    base = np.stack([octs.x.astype(float), octs.y.astype(float)], axis=1)

    # Map the four corners and center of every leaf.
    corners = np.zeros((n, 4, 3))
    centers = np.zeros((n, 3))
    for tree in np.unique(octs.tree):
        sel = np.flatnonzero(octs.tree == tree)
        for c in range(4):
            off = np.array([c & 1, (c >> 1) & 1], dtype=float)
            u = (base[sel] + off * h[sel, None]) / L
            corners[sel, c] = geometry.map_points(int(tree), u)
        uc = (base[sel] + 0.5 * h[sel, None]) / L
        centers[sel] = geometry.map_points(int(tree), uc)

    xy = corners[..., :2]
    lo = xy.reshape(-1, 2).min(axis=0)
    hi = xy.reshape(-1, 2).max(axis=0)
    span = max(hi - lo) or 1.0
    pad = 0.03 * span

    def tx(p):
        q = (p - lo + pad) / (span + 2 * pad) * size
        return q[0], size - q[1]

    lines = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{size}" height="{size}" '
        f'viewBox="0 0 {size} {size}">'
    ]
    # SFC order = global order in `octs` (rank segments concatenated).
    order = np.lexsort((octs.keys(), octs.tree))
    for i in order:
        quad = [tx(xy[i, c]) for c in (0, 1, 3, 2)]
        pstr = " ".join(f"{a:.2f},{b:.2f}" for a, b in quad)
        color = _PALETTE[owners[i] % len(_PALETTE)]
        lines.append(
            f'<polygon points="{pstr}" fill="{color}" fill-opacity="0.55" '
            f'stroke="{stroke}" stroke-width="0.8"/>'
        )
    if draw_sfc and n > 1:
        cpts = [tx(centers[i, :2]) for i in order]
        d = "M " + " L ".join(f"{a:.2f} {b:.2f}" for a, b in cpts)
        lines.append(
            f'<path d="{d}" fill="none" stroke="#000000" stroke-width="1.6" '
            'stroke-opacity="0.8"/>'
        )
    lines.append("</svg>")
    with open(path, "w") as f:
        f.write("\n".join(lines))
    return path

"""Parity between the collective registry, the runtime, and the linter.

The registry (:mod:`repro.parallel.collectives`) is the single source
of truth for what counts as a collective.  These tests pin the three
consumers to it: the ``Comm`` ABC and ``Forest`` surfaces must carry
matching ``@collective`` stamps, the runtime sanitizer must check
exactly the registry's comm ops, and the lint registry must mirror the
same name sets — so a collective added to one place without the others
fails here rather than silently drifting.
"""

import ast
import inspect
from pathlib import Path

from repro.analysis.registry import DEFAULT_REGISTRY
from repro.p4est.forest import Forest
from repro.parallel.collectives import (
    COMM_COLLECTIVE_NAMES,
    COMM_COLLECTIVES,
    FOREST_COLLECTIVE_NAMES,
    FOREST_COLLECTIVES,
    PAYLOAD_CHECKED_OPS,
    UNIFORM_RESULT_OPS,
    collective_spec,
)
from repro.parallel.comm import Comm

COMM_BY_NAME = {s.name: s for s in COMM_COLLECTIVES}
FOREST_BY_NAME = {s.name: s for s in FOREST_COLLECTIVES}

SANITIZER = (
    Path(__file__).resolve().parents[2]
    / "src"
    / "repro"
    / "parallel"
    / "sanitizer.py"
)


def test_comm_abc_methods_carry_registry_stamps():
    for name, spec in COMM_BY_NAME.items():
        method = getattr(Comm, name)
        stamped = collective_spec(method)
        assert stamped is spec, f"Comm.{name} missing/mismatched @collective"


def test_every_abstract_comm_method_is_registered():
    abstract = {
        name
        for name, member in inspect.getmembers(Comm)
        if getattr(member, "__isabstractmethod__", False)
    }
    # rank/size are identity properties, not operations.
    ops = {n for n in abstract if n not in {"rank", "size"}}
    assert ops == COMM_COLLECTIVE_NAMES - {"reduce"}
    # reduce is concrete (derived from gather+bcast) but still collective.
    assert collective_spec(Comm.reduce) is COMM_BY_NAME["reduce"]
    assert COMM_BY_NAME["reduce"].derived


def test_forest_collectives_carry_registry_stamps():
    for name, spec in FOREST_BY_NAME.items():
        method = inspect.getattr_static(Forest, name)
        if isinstance(method, classmethod):
            method = method.__func__
        stamped = collective_spec(method)
        assert stamped is spec, f"Forest.{name} missing/mismatched @collective"


def test_sanitizer_checks_exactly_the_registry_ops():
    """Every ``_check("op")`` string in the sanitizer is a registry op,
    and every registry comm op (bar the derived ``reduce``, which the
    sanitizer sees as its gather+bcast expansion) is checked."""
    tree = ast.parse(SANITIZER.read_text())
    checked = set()
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "_check"
            and node.args
            and isinstance(node.args[0], ast.Constant)
        ):
            checked.add(node.args[0].value)
    assert checked == COMM_COLLECTIVE_NAMES - {"reduce"}


def test_sanitizer_payload_set_is_the_registry_view():
    from repro.parallel import sanitizer

    assert sanitizer._PAYLOAD_CHECKED is PAYLOAD_CHECKED_OPS
    assert PAYLOAD_CHECKED_OPS == {
        n for n, s in COMM_BY_NAME.items() if s.payload_checked
    }


def test_lint_registry_mirrors_collective_registry():
    reg = DEFAULT_REGISTRY
    assert reg.comm_collectives == COMM_COLLECTIVE_NAMES
    assert reg.forest_collectives == FOREST_COLLECTIVE_NAMES
    assert reg.uniform_comm_collectives == UNIFORM_RESULT_OPS
    assert reg.uniform_forest_collectives == {
        n for n, s in FOREST_BY_NAME.items() if s.uniform_result
    }


def test_uniform_result_ops_are_the_laundering_set():
    # Taint laundering is sound only for ops returning identical values
    # on every rank; pin the set so additions are deliberate.
    assert UNIFORM_RESULT_OPS == {"barrier", "bcast", "allgather", "allreduce"}

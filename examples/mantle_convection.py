"""§IV-A scenario: adaptive global mantle flow with plates (Fig. 6).

A present-day-style temperature field with slab/plume anomalies drives a
nonlinear Stokes problem on the 24-octree shell; plate boundaries are
narrow weak zones with viscosity lowered by five orders of magnitude.
The mesh statically refines to the weak zones and the thermal anomalies,
then Picard (lagged-viscosity) iterations interleave with dynamic,
solution-adaptive refinement from strain rates and viscosity gradients.
Writes the viscosity field and mesh to VTK (the content of Fig. 6) and
prints the Fig. 7 runtime split.

Run:  python examples/mantle_convection.py
"""

import numpy as np

from repro.apps.rhea.driver import RheaConfig, RheaRun
from repro.io.vtk import write_vtk
from repro.parallel import SerialComm


def main():
    cfg = RheaConfig(
        domain="shell",
        base_level=1,
        max_level=2,
        rayleigh=1e4,
        picard_per_adapt=2,
        stokes_tol=1e-6,
        stokes_maxiter=250,
    )
    run = RheaRun(SerialComm(), cfg)
    print("Rhea: adaptive nonlinear mantle flow on the 24-tree shell")
    print("-" * 60)
    print(f"elements after static (data-adaptive) refinement: "
          f"{run.forest.global_count}")
    print(f"velocity/pressure unknowns: "
          f"{run.ln.global_num_nodes * (run.dim + 1)}")

    for k in range(3):
        res = run.picard_step()
        print(
            f"picard {k + 1}: MINRES its {res.iterations:4d}, "
            f"V-cycles {res.vcycles:4d}, residual {res.residuals[-1]:.2e}, "
            f"|u|_rms {run.velocity_rms():.3e}"
        )
        if run.picard_count % cfg.picard_per_adapt == 0:
            run.adapt()
            print(f"   dynamic adapt -> {run.forest.global_count} elements")

    eta = run.viscosity_field()
    write_vtk(
        "mantle_viscosity.vtk",
        run.forest,
        run.geometry,
        cell_data={
            "log10_eta": np.log10(eta).mean(axis=1),
            "T": run._element_T().mean(axis=1),
        },
    )
    pct = run.runtime_percentages()
    print("runtime split (paper Fig. 7: solve 16-34%, V-cycle 66-83%, "
          "AMR ~0.1%):")
    for k, v in sorted(pct.items(), key=lambda kv: -kv[1]):
        print(f"   {k:8s} {v:6.2f}%")
    print("wrote mantle_viscosity.vtk")


if __name__ == "__main__":
    main()

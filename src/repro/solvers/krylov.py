"""Krylov methods with pluggable inner products (for distributed use).

CG, MINRES, and GMRES over abstract operators: ``A`` and ``M`` (the
preconditioner) are callables ``x -> y``; ``dot`` is the inner product,
which distributed callers replace with an owned-dof dot plus allreduce so
every rank sees identical iterates (how Rhea's Krylov loops run on the
machine).  All methods record per-iteration residual norms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

Operator = Callable[[np.ndarray], np.ndarray]
Dot = Callable[[np.ndarray, np.ndarray], float]


@dataclass
class SolveResult:
    """Outcome of a Krylov solve."""

    x: np.ndarray
    converged: bool
    iterations: int
    residuals: List[float] = field(default_factory=list)

    @property
    def final_residual(self) -> float:
        return self.residuals[-1] if self.residuals else float("nan")


def _default_dot(a: np.ndarray, b: np.ndarray) -> float:
    return float(np.dot(a.ravel(), b.ravel()))


def cg(
    A: Operator,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    M: Optional[Operator] = None,
    tol: float = 1e-10,
    maxiter: int = 1000,
    dot: Dot = _default_dot,
) -> SolveResult:
    """Preconditioned conjugate gradients for SPD systems."""
    x = np.zeros_like(b) if x0 is None else x0.copy()
    r = b - A(x)
    z = M(r) if M is not None else r
    p = z.copy()
    rz = dot(r, z)
    bnorm = np.sqrt(max(dot(b, b), 1e-300))
    residuals = [np.sqrt(max(dot(r, r), 0.0)) / bnorm]
    if residuals[-1] <= tol:
        return SolveResult(x, True, 0, residuals)
    for it in range(1, maxiter + 1):
        Ap = A(p)
        alpha = rz / dot(p, Ap)
        x += alpha * p
        r -= alpha * Ap
        rn = np.sqrt(max(dot(r, r), 0.0)) / bnorm
        residuals.append(rn)
        if rn <= tol:
            return SolveResult(x, True, it, residuals)
        z = M(r) if M is not None else r
        rz_new = dot(r, z)
        p = z + (rz_new / rz) * p
        rz = rz_new
    return SolveResult(x, False, maxiter, residuals)


def minres(
    A: Operator,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    M: Optional[Operator] = None,
    tol: float = 1e-10,
    maxiter: int = 1000,
    dot: Dot = _default_dot,
) -> SolveResult:
    """Preconditioned MINRES for symmetric (possibly indefinite) systems.

    ``M`` must be symmetric positive definite (the paper's block-diagonal
    Stokes preconditioner is).  Standard Paige-Saunders recurrence in the
    M-inner product.
    """
    # Elman-Silvester-Wathen formulation of preconditioned MINRES.
    x = np.zeros_like(b) if x0 is None else x0.copy()
    v_prev = np.zeros_like(b)
    v = b - A(x)
    z = M(v) if M is not None else v.copy()
    gamma_prev = 1.0
    gamma = np.sqrt(max(dot(z, v), 0.0))
    bz = M(b) if M is not None else b
    bnorm = np.sqrt(max(dot(b, bz), 1e-300))
    eta = gamma
    s_prev = s = 0.0
    c_prev = c = 1.0
    w = np.zeros_like(b)
    w_prev = np.zeros_like(b)
    residuals = [gamma / bnorm]
    if gamma == 0.0 or residuals[-1] <= tol:
        return SolveResult(x, True, 0, residuals)

    for it in range(1, maxiter + 1):
        zh = z / gamma
        q = A(zh)
        delta = dot(q, zh)
        v_next = q - (delta / gamma) * v - (gamma / gamma_prev) * v_prev
        z_next = M(v_next) if M is not None else v_next.copy()
        gamma_next = np.sqrt(max(dot(z_next, v_next), 0.0))

        alpha0 = c * delta - c_prev * s * gamma
        alpha1 = np.hypot(alpha0, gamma_next)
        alpha2 = s * delta + c_prev * c * gamma
        alpha3 = s_prev * gamma
        c_prev, s_prev = c, s
        c = alpha0 / alpha1 if alpha1 else 1.0
        s = gamma_next / alpha1 if alpha1 else 0.0

        w_next = (zh - alpha3 * w_prev - alpha2 * w) / alpha1
        x += (c * eta) * w_next
        eta = -s * eta

        v_prev, v = v, v_next
        w_prev, w = w, w_next
        z = z_next
        gamma_prev, gamma = gamma, gamma_next

        residuals.append(abs(eta) / bnorm)
        if residuals[-1] <= tol or gamma_next == 0.0:
            return SolveResult(x, True, it, residuals)
    return SolveResult(x, False, maxiter, residuals)


def gmres(
    A: Operator,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    M: Optional[Operator] = None,
    tol: float = 1e-10,
    maxiter: int = 200,
    restart: int = 50,
    dot: Dot = _default_dot,
) -> SolveResult:
    """Restarted GMRES with left preconditioning."""
    x = np.zeros_like(b) if x0 is None else x0.copy()
    bprec = M(b) if M is not None else b
    bnorm = np.sqrt(max(dot(bprec, bprec), 1e-300))
    residuals: List[float] = []
    total_it = 0
    while total_it < maxiter:
        r = b - A(x)
        z = M(r) if M is not None else r
        beta = np.sqrt(max(dot(z, z), 0.0))
        residuals.append(beta / bnorm)
        if residuals[-1] <= tol:
            return SolveResult(x, True, total_it, residuals)
        m = min(restart, maxiter - total_it)
        V = [z / beta]
        H = np.zeros((m + 1, m))
        g = np.zeros(m + 1)
        g[0] = beta
        cs = np.zeros(m)
        sn = np.zeros(m)
        k_done = 0
        for k in range(m):
            w = A(V[k])
            w = M(w) if M is not None else w
            for i in range(k + 1):
                H[i, k] = dot(w, V[i])
                w = w - H[i, k] * V[i]
            H[k + 1, k] = np.sqrt(max(dot(w, w), 0.0))
            if H[k + 1, k] > 1e-300:
                V.append(w / H[k + 1, k])
            else:
                V.append(w)
            # Apply accumulated rotations.
            for i in range(k):
                t = cs[i] * H[i, k] + sn[i] * H[i + 1, k]
                H[i + 1, k] = -sn[i] * H[i, k] + cs[i] * H[i + 1, k]
                H[i, k] = t
            denom = np.hypot(H[k, k], H[k + 1, k])
            cs[k] = H[k, k] / denom if denom else 1.0
            sn[k] = H[k + 1, k] / denom if denom else 0.0
            H[k, k] = denom
            H[k + 1, k] = 0.0
            g[k + 1] = -sn[k] * g[k]
            g[k] = cs[k] * g[k]
            k_done = k + 1
            total_it += 1
            residuals.append(abs(g[k + 1]) / bnorm)
            if residuals[-1] <= tol:
                break
        y = np.linalg.solve(H[:k_done, :k_done], g[:k_done])
        for i in range(k_done):
            x = x + y[i] * V[i]
        if residuals[-1] <= tol:
            return SolveResult(x, True, total_it, residuals)
    return SolveResult(x, False, total_it, residuals)
